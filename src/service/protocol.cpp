#include "service/protocol.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace tadfa::service {
namespace {

/// Outcome of a read_exact: how many bytes arrived and why it stopped
/// short (fd receive deadline vs. hard error; EOF is just a short count
/// with neither flag set).
struct ReadOutcome {
  std::size_t got = 0;
  bool timed_out = false;
  bool hard_error = false;
};

/// Reads exactly `n` bytes unless the peer closes first, the fd's
/// SO_RCVTIMEO deadline expires, or a hard error hits.
ReadOutcome read_exact(int fd, char* buf, std::size_t n) {
  ReadOutcome out;
  while (out.got < n) {
    const ssize_t r = ::recv(fd, buf + out.got, n - out.got, 0);
    if (r > 0) {
      out.got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      break;  // peer closed
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      out.timed_out = true;
      break;
    }
    out.hard_error = true;
    break;
  }
  return out;
}

/// Writes all of `data`. MSG_NOSIGNAL: a vanished peer must surface as
/// EPIPE, not kill the server with SIGPIPE.
bool write_all(int fd, std::string_view data, std::string* error) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t w =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) {
      continue;
    }
    if (error != nullptr) {
      *error = std::string("write failed: ") + std::strerror(errno);
    }
    return false;
  }
  return true;
}

void serialize_pass_stats(ByteWriter& w,
                          const std::vector<pipeline::PassRunStats>& stats) {
  w.u64(stats.size());
  for (const pipeline::PassRunStats& s : stats) {
    w.str(s.name);
    w.f64(s.seconds);
    w.str(s.summary);
    w.boolean(s.changed);
    w.u64(s.instructions_after);
    w.u32(s.vregs_after);
  }
}

std::vector<pipeline::PassRunStats> deserialize_pass_stats(ByteReader& r) {
  std::vector<pipeline::PassRunStats> stats;
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    pipeline::PassRunStats s;
    s.name = r.str();
    s.seconds = r.f64();
    s.summary = r.str();
    s.changed = r.boolean();
    s.instructions_after = r.u64();
    s.vregs_after = r.u32();
    stats.push_back(std::move(s));
  }
  return stats;
}

void serialize_analysis_stats(
    ByteWriter& w,
    const std::vector<pipeline::AnalysisManager::AnalysisStats>& stats) {
  w.u64(stats.size());
  for (const auto& s : stats) {
    w.str(s.name);
    w.u64(s.hits);
    w.u64(s.misses);
    w.u64(s.puts);
    w.u64(s.invalidations);
  }
}

std::vector<pipeline::AnalysisManager::AnalysisStats>
deserialize_analysis_stats(ByteReader& r) {
  std::vector<pipeline::AnalysisManager::AnalysisStats> stats;
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    pipeline::AnalysisManager::AnalysisStats s;
    s.name = r.str();
    s.hits = r.u64();
    s.misses = r.u64();
    s.puts = r.u64();
    s.invalidations = r.u64();
    stats.push_back(std::move(s));
  }
  return stats;
}

}  // namespace

// --- CompileRequest ----------------------------------------------------------

void CompileRequest::serialize(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(MessageType::kCompileRequest));
  w.str(spec);
  w.boolean(checkpoints);
  w.boolean(analysis_cache);
  w.u64(kernels.size());
  for (const std::string& kernel : kernels) {
    w.str(kernel);
  }
  w.str(module_text);
  w.boolean(edit_aware);
  w.str(frontend);
  w.str(machine);
}

std::optional<CompileRequest> CompileRequest::deserialize(ByteReader& r) {
  if (r.u8() != static_cast<std::uint8_t>(MessageType::kCompileRequest)) {
    return std::nullopt;
  }
  CompileRequest request;
  request.spec = r.str();
  request.checkpoints = r.boolean();
  request.analysis_cache = r.boolean();
  const std::uint64_t num_kernels = r.u64();
  for (std::uint64_t i = 0; i < num_kernels && r.ok(); ++i) {
    request.kernels.push_back(r.str());
  }
  request.module_text = r.str();
  request.edit_aware = r.boolean();
  request.frontend = r.str();
  request.machine = r.str();
  if (!r.ok() || r.remaining() != 0) {
    return std::nullopt;
  }
  return request;
}

// --- CompileResponse ---------------------------------------------------------

std::size_t CompileResponse::cache_hits() const {
  std::size_t hits = 0;
  for (const FunctionResult& f : functions) {
    hits += f.from_cache ? 1 : 0;
  }
  return hits;
}

double CompileResponse::cache_hit_rate() const {
  return functions.empty()
             ? 0.0
             : static_cast<double>(cache_hits()) /
                   static_cast<double>(functions.size());
}

std::size_t CompileResponse::prefix_hits() const {
  std::size_t hits = 0;
  for (const FunctionResult& f : functions) {
    hits += f.resumed_passes > 0 ? 1 : 0;
  }
  return hits;
}

std::size_t CompileResponse::passes_skipped() const {
  std::size_t skipped = 0;
  for (const FunctionResult& f : functions) {
    skipped += f.resumed_passes;
  }
  return skipped;
}

void CompileResponse::serialize(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(MessageType::kCompileResponse));
  w.boolean(ok);
  w.u8(static_cast<std::uint8_t>(code));
  w.str(error);
  w.u64(functions.size());
  for (const FunctionResult& f : functions) {
    w.str(f.name);
    w.boolean(f.ok);
    w.str(f.error);
    w.boolean(f.from_cache);
    w.u32(f.resumed_passes);
    w.str(f.printed);
    w.u64(f.instructions);
    w.u32(f.vregs);
    w.u32(f.spilled_regs);
    w.f64(f.seconds);
    w.u8(static_cast<std::uint8_t>(f.invalidation));
    w.str(f.invalidated_via);
  }
  serialize_pass_stats(w, pass_stats);
  serialize_analysis_stats(w, analysis_stats);
  w.boolean(cache_attached);
  w.u64(cache.hits);
  w.u64(cache.misses);
  w.u64(cache.stores);
  w.u64(cache.bad_entries);
  w.u64(cache.evictions);
  w.u64(cache.store_failures);
  w.u64(cache.lookup_faults);
  w.u64(cache.stage_hits);
  w.u64(cache.stage_misses);
  w.u64(cache.stage_stores);
  w.f64(server_seconds);
}

std::optional<CompileResponse> CompileResponse::deserialize(ByteReader& r) {
  if (r.u8() != static_cast<std::uint8_t>(MessageType::kCompileResponse)) {
    return std::nullopt;
  }
  CompileResponse response;
  response.ok = r.boolean();
  const std::uint8_t code = r.u8();
  if (code > static_cast<std::uint8_t>(ResponseCode::kVersionMismatch)) {
    return std::nullopt;
  }
  response.code = static_cast<ResponseCode>(code);
  response.error = r.str();
  const std::uint64_t num_functions = r.u64();
  for (std::uint64_t i = 0; i < num_functions && r.ok(); ++i) {
    FunctionResult f;
    f.name = r.str();
    f.ok = r.boolean();
    f.error = r.str();
    f.from_cache = r.boolean();
    f.resumed_passes = r.u32();
    f.printed = r.str();
    f.instructions = r.u64();
    f.vregs = r.u32();
    f.spilled_regs = r.u32();
    f.seconds = r.f64();
    const std::uint8_t reason = r.u8();
    if (reason > static_cast<std::uint8_t>(pipeline::kMaxInvalidationReason)) {
      return std::nullopt;
    }
    f.invalidation = static_cast<pipeline::InvalidationReason>(reason);
    f.invalidated_via = r.str();
    response.functions.push_back(std::move(f));
  }
  response.pass_stats = deserialize_pass_stats(r);
  response.analysis_stats = deserialize_analysis_stats(r);
  response.cache_attached = r.boolean();
  response.cache.hits = r.u64();
  response.cache.misses = r.u64();
  response.cache.stores = r.u64();
  response.cache.bad_entries = r.u64();
  response.cache.evictions = r.u64();
  response.cache.store_failures = r.u64();
  response.cache.lookup_faults = r.u64();
  response.cache.stage_hits = r.u64();
  response.cache.stage_misses = r.u64();
  response.cache.stage_stores = r.u64();
  response.server_seconds = r.f64();
  if (!r.ok() || r.remaining() != 0) {
    return std::nullopt;
  }
  return response;
}

std::string_view response_code_name(ResponseCode code) {
  switch (code) {
    case ResponseCode::kOk:
      return "OK";
    case ResponseCode::kError:
      return "ERROR";
    case ResponseCode::kBusy:
      return "BUSY";
    case ResponseCode::kTimeout:
      return "TIMEOUT";
    case ResponseCode::kVersionMismatch:
      return "VERSION_MISMATCH";
  }
  return "?";
}

namespace {
CompileResponse coded_response(ResponseCode code, std::string message) {
  CompileResponse response;
  response.ok = false;
  response.code = code;
  response.error = std::move(message);
  return response;
}
}  // namespace

CompileResponse error_response(std::string message) {
  return coded_response(ResponseCode::kError, std::move(message));
}

CompileResponse busy_response(std::string message) {
  return coded_response(ResponseCode::kBusy, std::move(message));
}

CompileResponse timeout_response(std::string message) {
  return coded_response(ResponseCode::kTimeout, std::move(message));
}

CompileResponse version_mismatch_response(std::uint32_t peer_version) {
  return coded_response(
      ResponseCode::kVersionMismatch,
      "protocol version mismatch: peer speaks v" +
          std::to_string(peer_version) + ", this build speaks v" +
          std::to_string(kProtocolVersion) +
          " — upgrade the older side; mixed versions cannot share a wire");
}

// --- Framing -----------------------------------------------------------------

bool write_frame(int fd, std::string_view payload, std::string* error) {
  ByteWriter header;
  header.u32(kFrameMagic);
  header.u32(kProtocolVersion);
  header.u64(payload.size());
  if (!write_all(fd, header.data(), error)) {
    return false;
  }
  return write_all(fd, payload, error);
}

FrameStatus read_frame(int fd, std::string* payload, std::string* error,
                       std::uint32_t* peer_version) {
  char header[16];
  const ReadOutcome head = read_exact(fd, header, sizeof(header));
  if (head.got == 0 && !head.hard_error) {
    // Nothing of the next frame arrived: a clean close, or (under an
    // I/O deadline) an idle connection — not a protocol violation.
    return head.timed_out ? FrameStatus::kIdle : FrameStatus::kClosed;
  }
  if (head.got != sizeof(header)) {
    if (head.timed_out) {
      *error = "peer stalled mid-frame: " + std::to_string(head.got) +
               " of 16 header bytes before the I/O deadline";
      return FrameStatus::kTimeout;
    }
    *error = head.hard_error
                 ? std::string("read failed: ") + std::strerror(errno)
                 : "truncated frame header";
    return FrameStatus::kError;
  }
  ByteReader r(std::string_view(header, sizeof(header)));
  const std::uint32_t magic = r.u32();
  const std::uint32_t version = r.u32();
  const std::uint64_t length = r.u64();
  if (magic != kFrameMagic) {
    *error = "bad frame magic (not a tadfa service client?)";
    return FrameStatus::kError;
  }
  if (version != kProtocolVersion) {
    // The frame header layout is stable across versions, so the
    // mismatch is trustworthy — but the payload encoding is not, so it
    // is not consumed. The caller answers with a structured
    // version_mismatch_response and hangs up.
    if (peer_version != nullptr) {
      *peer_version = version;
    }
    *error = "protocol version mismatch: peer speaks v" +
             std::to_string(version) + ", this build speaks v" +
             std::to_string(kProtocolVersion);
    return FrameStatus::kVersionMismatch;
  }
  if (length > kMaxFrameBytes) {
    *error = "frame of " + std::to_string(length) +
             " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
             "-byte limit";
    return FrameStatus::kError;
  }
  payload->resize(length);
  if (length != 0) {
    const ReadOutcome body = read_exact(fd, payload->data(), length);
    if (body.got != length) {
      if (body.timed_out) {
        *error = "peer stalled mid-frame: " + std::to_string(body.got) +
                 " of " + std::to_string(length) +
                 " payload bytes before the I/O deadline";
        return FrameStatus::kTimeout;
      }
      *error = body.hard_error
                   ? std::string("read failed: ") + std::strerror(errno)
                   : "frame truncated: announced " + std::to_string(length) +
                         " payload bytes, got " + std::to_string(body.got);
      return FrameStatus::kError;
    }
  }
  return FrameStatus::kOk;
}

bool write_request(int fd, const CompileRequest& request, std::string* error) {
  ByteWriter w;
  request.serialize(w);
  return write_frame(fd, w.data(), error);
}

bool write_response(int fd, const CompileResponse& response,
                    std::string* error) {
  ByteWriter w;
  response.serialize(w);
  return write_frame(fd, w.data(), error);
}

std::optional<CompileResponse> read_response(int fd, std::string* error) {
  std::string payload;
  const FrameStatus status = read_frame(fd, &payload, error);
  if (status == FrameStatus::kClosed) {
    *error = "server closed the connection before responding";
    return std::nullopt;
  }
  if (status == FrameStatus::kIdle || status == FrameStatus::kTimeout) {
    *error = "server did not respond before the I/O deadline";
    return std::nullopt;
  }
  if (status != FrameStatus::kOk) {
    // kVersionMismatch lands here too: read_frame already formatted the
    // both-versions message into `error`.
    return std::nullopt;
  }
  ByteReader r(payload);
  auto response = CompileResponse::deserialize(r);
  if (!response.has_value()) {
    *error = "undecodable response payload";
  }
  return response;
}

int connect_unix(const std::string& socket_path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) {
      *error = "socket path too long: " + socket_path;
    }
    return -1;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("socket failed: ") + std::strerror(errno);
    }
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "cannot connect to '" + socket_path +
               "': " + std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_unix_retry(const std::string& socket_path, double timeout_seconds,
                       std::string* error) {
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::duration<double>(timeout_seconds);
  auto backoff = std::chrono::milliseconds(10);
  constexpr auto kMaxBackoff = std::chrono::milliseconds(200);
  for (;;) {
    const int fd = connect_unix(socket_path, error);
    if (fd >= 0) {
      return fd;
    }
    const auto now = Clock::now();
    if (now >= deadline) {
      return -1;
    }
    auto sleep_for = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    if (backoff < sleep_for) {
      sleep_for = backoff;
    }
    std::this_thread::sleep_for(sleep_for);
    backoff = std::min(backoff * 2, kMaxBackoff);
  }
}

}  // namespace tadfa::service
