// Wire protocol of the persistent compile service (`tadfa serve`).
//
// Messages travel over a stream socket as length-prefixed frames:
//
//   [u32 magic][u32 protocol version][u64 payload bytes][payload]
//
// all little-endian via support/serialize (the same primitives the
// persistent result cache trusts). The payload is one serialized
// message, tagged by a leading MessageType byte. Framing is versioned
// independently of the cache format: kProtocolVersion is bumped on any
// wire-visible change, and a server answers a mismatched client with a
// structured error naming both versions instead of guessing at the
// bytes. A frame announcing more than kMaxFrameBytes is rejected before
// any allocation — garbage on the socket must never look like a 16 EiB
// request.
//
// The reader side is totalizing end to end: a truncated frame, a short
// payload, or trailing garbage degrades to a decode error the server
// answers with CompileResponse{ok = false, error = ...} — never a hang,
// never a crash.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pipeline/analysis_manager.hpp"
#include "pipeline/dependency_graph.hpp"
#include "pipeline/pass_manager.hpp"
#include "pipeline/result_cache.hpp"
#include "support/serialize.hpp"

namespace tadfa::service {

/// "TDFA" — first four bytes of every frame.
constexpr std::uint32_t kFrameMagic = 0x41464454u;
/// Bumped on any wire-visible change to the frame or message encoding.
/// v2: FunctionResult grew resumed_passes; the response cache-stats
/// block grew the stage-entry counters (incremental compilation).
/// v3: CompileResponse grew the structured ResponseCode (OK / ERROR /
/// BUSY / TIMEOUT / VERSION_MISMATCH) that admission control and the
/// sharding router key on, and a version-mismatched frame is answered
/// with an explicit VERSION_MISMATCH error frame naming both versions
/// instead of a bare framing error — a v2 client gets a structured
/// refusal, never a hang.
/// v4: CompileRequest grew the edit_aware flag; FunctionResult grew the
/// per-function invalidation reason + via path (dependency-edge
/// invalidation), so a client can see *why* each function recompiled.
/// v5: CompileRequest grew the frontend + machine names (the frontend
/// seam and the machine matrix). Empty strings keep v4 semantics —
/// module text is canonical .tir, compiled on the server's default
/// machine — and unknown names get a structured kError naming the
/// available choices; a v4 peer still gets the version-mismatch frame.
constexpr std::uint32_t kProtocolVersion = 5;
/// Upper bound on a single frame's payload (64 MiB). A length prefix
/// beyond this is treated as a framing error, not an allocation.
constexpr std::uint64_t kMaxFrameBytes = 64ull << 20;

enum class MessageType : std::uint8_t {
  kCompileRequest = 1,
  kCompileResponse = 2,
};

/// Structured outcome class of a CompileResponse. Ordinary failures
/// (bad spec, unknown kernel, failed pass) are kError; the other codes
/// let a client or router react without parsing error text: kBusy means
/// the server shed the request at admission (bounded queue full or no
/// shard reachable — retry with backoff), kTimeout means the peer
/// stalled past the I/O deadline mid-frame, and kVersionMismatch names
/// a peer speaking a different kProtocolVersion.
enum class ResponseCode : std::uint8_t {
  kOk = 0,
  kError = 1,
  kBusy = 2,
  kTimeout = 3,
  kVersionMismatch = 4,
};

std::string_view response_code_name(ResponseCode code);

/// One compile submission: a pipeline spec plus the functions to
/// compile, named (server-side kernel suite) and/or as IR module text.
struct CompileRequest {
  /// Pipeline spec string; empty means the server's default pipeline.
  std::string spec;
  /// Verifier checkpoints between passes (the CLI's --no-verify).
  bool checkpoints = true;
  /// Analysis caching (the CLI's --no-analysis-cache).
  bool analysis_cache = true;
  /// Named kernels resolved by the server (workload::make_kernel).
  std::vector<std::string> kernels;
  /// IR module text parsed by the server; appended after the kernels.
  std::string module_text;
  /// v4: compile edit-aware — the server diffs the module against its
  /// cached dependency graph and reports per-function invalidation
  /// reasons (requires a server-side cache to have any effect).
  bool edit_aware = false;
  /// v5: frontend that parses module_text (frontend::FrontendRegistry
  /// name). Empty means "tir" — the v4 behavior. Unknown names are
  /// answered with a structured kError listing the registry.
  std::string frontend;
  /// v5: named machine config to compile on (machine::MachineRegistry
  /// name). Empty means the server's own default machine. Unknown names
  /// are answered with a structured kError listing the registry.
  std::string machine;

  void serialize(ByteWriter& w) const;
  /// nullopt on any truncation or implausibility.
  static std::optional<CompileRequest> deserialize(ByteReader& r);

  friend bool operator==(const CompileRequest&,
                         const CompileRequest&) = default;
};

/// One function's outcome inside a CompileResponse (request order).
struct FunctionResult {
  std::string name;
  bool ok = false;
  std::string error;
  /// Restored from the server's persistent result cache.
  bool from_cache = false;
  /// Passes skipped by resuming from a cached stage snapshot (0 unless
  /// the server compiles incrementally).
  std::uint32_t resumed_passes = 0;
  /// The compiled function via the canonical printer — byte-identical
  /// to a direct CompilationDriver compile of the same input.
  std::string printed;
  std::uint64_t instructions = 0;
  std::uint32_t vregs = 0;
  std::uint32_t spilled_regs = 0;
  double seconds = 0;
  /// v4: why this function was (or was not) invalidated against the
  /// server's cached dependency graph; kUnknown unless the request set
  /// edit_aware and the server compiles with a cache.
  pipeline::InvalidationReason invalidation =
      pipeline::InvalidationReason::kUnknown;
  /// v4: for kDependent, the dependency path walked to the changed
  /// function ("a -> b -> c", c edited).
  std::string invalidated_via;

  friend bool operator==(const FunctionResult&,
                         const FunctionResult&) = default;
};

struct CompileResponse {
  /// False when the request itself failed (bad spec, unknown kernel,
  /// unparsable module text, malformed frame) or any function failed.
  bool ok = false;
  /// Outcome class (v3): kOk iff `ok`; failures say *why* structurally
  /// so a client can distinguish "retry later" (kBusy) from "fix the
  /// request" (kError).
  ResponseCode code = ResponseCode::kError;
  /// Request-level structured error; per-function errors live on the
  /// FunctionResult entries.
  std::string error;
  std::vector<FunctionResult> functions;
  /// Pass statistics merged position-wise over this request's
  /// functions (same shape as ModulePipelineResult::merged_pass_stats).
  std::vector<pipeline::PassRunStats> pass_stats;
  /// Analysis-cache counters merged by name over this request.
  std::vector<pipeline::AnalysisManager::AnalysisStats> analysis_stats;
  /// Snapshot of the server's shared ResultCache counters after this
  /// request (all zeros when the server runs uncached).
  bool cache_attached = false;
  pipeline::ResultCacheStats cache;
  /// Server-side wall clock from dequeue to compiled.
  double server_seconds = 0;

  /// Functions of *this request* restored from the persistent cache.
  std::size_t cache_hits() const;
  /// cache_hits() over the function count (0 for an empty response).
  double cache_hit_rate() const;
  /// Functions of this request that resumed from a cached stage
  /// snapshot instead of compiling from pass 0.
  std::size_t prefix_hits() const;
  /// Total passes those resumes skipped.
  std::size_t passes_skipped() const;

  void serialize(ByteWriter& w) const;
  static std::optional<CompileResponse> deserialize(ByteReader& r);
};

/// Convenience: a ready error response (code kError).
CompileResponse error_response(std::string message);
/// An admission-control shed: code kBusy, retry with backoff.
CompileResponse busy_response(std::string message);
/// An I/O-deadline expiry: code kTimeout.
CompileResponse timeout_response(std::string message);
/// A structured version refusal naming both versions (kVersionMismatch).
CompileResponse version_mismatch_response(std::uint32_t peer_version);

// --- Framing over file descriptors ------------------------------------------

enum class FrameStatus {
  /// A whole frame arrived; `payload` holds its bytes.
  kOk,
  /// Clean end of stream exactly at a frame boundary.
  kClosed,
  /// Bad magic, oversize announcement, or EOF inside a frame; `error`
  /// says which. The stream can no longer be trusted.
  kError,
  /// A well-formed header announcing a different kProtocolVersion
  /// (reported via `peer_version`). The payload is NOT consumed; answer
  /// with version_mismatch_response and hang up.
  kVersionMismatch,
  /// The fd's receive deadline (SO_RCVTIMEO) expired mid-frame: the
  /// peer stalled after sending part of a header or payload. Answer
  /// with timeout_response (best effort) and hang up.
  kTimeout,
  /// The receive deadline expired at a frame boundary with nothing
  /// read: an idle connection, not a malformed one. Close quietly.
  kIdle,
};

/// Sends one frame (header + payload). False on any write failure.
bool write_frame(int fd, std::string_view payload, std::string* error);

/// Receives one frame into `payload`. On kVersionMismatch the peer's
/// announced version is stored into `peer_version` (when non-null).
FrameStatus read_frame(int fd, std::string* payload, std::string* error,
                       std::uint32_t* peer_version = nullptr);

/// Serializes `request` and sends it as one frame.
bool write_request(int fd, const CompileRequest& request, std::string* error);

/// Serializes `response` and sends it as one frame.
bool write_response(int fd, const CompileResponse& response,
                    std::string* error);

/// Receives one frame and decodes a CompileResponse from it. nullopt on
/// stream or decode failure (with `error` filled in).
std::optional<CompileResponse> read_response(int fd, std::string* error);

/// Connects to a Unix-domain socket; -1 on failure (with `error`).
int connect_unix(const std::string& socket_path, std::string* error);

/// connect_unix with bounded exponential backoff: retries a refused or
/// missing socket (a server still binding) until `timeout_seconds` of
/// budget is spent, sleeping 10 ms, 20 ms, ... capped at 200 ms between
/// attempts. Returns the connected fd, or -1 with the *last* attempt's
/// error once the budget runs out.
int connect_unix_retry(const std::string& socket_path, double timeout_seconds,
                       std::string* error);

}  // namespace tadfa::service
