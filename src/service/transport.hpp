// Transport abstraction for the compile service and its router.
//
// PR 5's CompileServer owned its Unix-domain listening socket directly;
// scaling out needs the same framed protocol over TCP, a router process
// that listens on either, and a server that can listen on *both* at
// once. This header splits the socket plumbing out of the server:
//
//   * Listener — one bound listening socket (Unix path or TCP
//     host:port), opened lazily so construction never touches the
//     filesystem or the network. A TCP listener bound to port 0 reports
//     the kernel-chosen port via port(), which is what the tests use to
//     avoid fixed-port collisions.
//   * ConnectionHost — the accept loop, the per-connection handler
//     threads, and their lifecycle (half-close drain on stop, joining
//     finished handlers so a long-lived process does not accumulate one
//     joinable thread per connection ever served). CompileServer and
//     Router both sit behind it and never see a socket address.
//
// Accepted connections get the host's I/O deadline applied as
// SO_RCVTIMEO/SO_SNDTIMEO before the handler runs: a peer that stalls
// mid-frame surfaces as a timeout in the frame reader instead of
// holding a handler thread forever.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace tadfa::service {

/// One "host:port" pair; `parse_host_port` accepts "host:port" with a
/// numeric port (0 = ephemeral) and "[v6::addr]:port" bracket syntax.
struct TcpEndpoint {
  std::string host;
  std::uint16_t port = 0;
};

std::optional<TcpEndpoint> parse_host_port(const std::string& spec,
                                           std::string* error);

/// A bound listening socket. open() binds and listens; close_listener()
/// releases the fd and any filesystem artifact (the Unix socket path).
class Listener {
 public:
  virtual ~Listener() = default;
  virtual bool open(std::string* error) = 0;
  /// -1 until open() succeeds.
  virtual int fd() const = 0;
  /// The bound TCP port (meaningful after open(); 0 for Unix sockets).
  virtual std::uint16_t port() const { return 0; }
  virtual std::string describe() const = 0;
  virtual void close_listener() = 0;
};

/// A Unix-domain listener. A stale socket file left by a dead server is
/// reclaimed on open(); anything else at the path refuses the bind.
std::unique_ptr<Listener> make_unix_listener(std::string socket_path);

/// A TCP listener (SO_REUSEADDR; port 0 binds an ephemeral port that
/// port() reports after open()).
std::unique_ptr<Listener> make_tcp_listener(std::string host,
                                            std::uint16_t port);

/// Connects to a TCP endpoint (TCP_NODELAY set: the protocol is
/// request/response frames, not a stream worth coalescing). -1 on
/// failure with `error`.
int connect_tcp(const std::string& host, std::uint16_t port,
                std::string* error);

/// connect_tcp with bounded exponential backoff (10 ms, 20 ms, ...
/// capped at 200 ms) until `timeout_seconds` of budget is spent, so a
/// client raced against server startup wins. Returns the connected fd,
/// or -1 with the last attempt's error.
int connect_tcp_retry(const std::string& host, std::uint16_t port,
                      double timeout_seconds, std::string* error);

/// Owns listeners and per-connection handler threads.
///
/// start() opens every listener and spawns one accept thread polling
/// them all; each accepted connection runs `handler(fd)` on its own
/// thread. stop() stops accepting, half-closes every live connection
/// (a handler blocked in read sees EOF and exits; a handler mid-request
/// finishes and responds — that is the drain), and joins everything.
/// The handler must not close the fd; the host closes it when the
/// handler returns.
class ConnectionHost {
 public:
  using Handler = std::function<void(int fd)>;

  ConnectionHost() = default;
  ~ConnectionHost();
  ConnectionHost(const ConnectionHost&) = delete;
  ConnectionHost& operator=(const ConnectionHost&) = delete;

  /// Call before start(). The host takes ownership.
  void add_listener(std::unique_ptr<Listener> listener);

  /// Read/write deadline applied to every accepted connection
  /// (SO_RCVTIMEO/SO_SNDTIMEO). <= 0 keeps a 60 s send-only deadline so
  /// a client that stops reading can never wedge a handler forever.
  void set_io_timeout(double seconds) { io_timeout_seconds_ = seconds; }

  /// Opens every listener and spawns the accept thread. On failure,
  /// already-opened listeners are closed again.
  bool start(Handler handler, std::string* error);
  /// Graceful drain; safe to call twice.
  void stop();

  bool started() const { return started_; }
  std::uint64_t connections_accepted() const;
  const std::vector<std::unique_ptr<Listener>>& listeners() const {
    return listeners_;
  }
  /// The first listener reporting a nonzero TCP port (0 if none).
  std::uint16_t tcp_port() const;

 private:
  void accept_loop();
  /// Joins handler threads that have announced completion, so a
  /// long-lived host does not pile up joinable threads.
  void reap_finished_handlers();
  void run_handler(int fd);

  std::vector<std::unique_ptr<Listener>> listeners_;
  Handler handler_;
  double io_timeout_seconds_ = 0;
  int wake_pipe_[2] = {-1, -1};
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  /// Guarded by conn_mu_: handler threads, their live socket fds, the
  /// ids of finished handlers awaiting a join, and the accept counter.
  mutable std::mutex conn_mu_;
  std::vector<std::thread> handlers_;
  std::vector<int> conn_fds_;
  std::vector<std::thread::id> finished_handlers_;
  std::uint64_t connections_ = 0;
};

}  // namespace tadfa::service
