#include "service/router.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "service/naming.hpp"
#include "support/statistics.hpp"
#include "workload/kernels.hpp"

namespace tadfa::service {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// splitmix64 finalizer: fingerprints are already hashes, but mixing
/// protects the modulo reduction from any residual low-bit structure.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Outbound shard sockets get a send deadline only: a shard that stops
/// reading must not wedge a router handler, but a shard legitimately
/// compiling a large batch may take arbitrarily long to respond.
void apply_send_deadline(int fd) {
  timeval tv{};
  tv.tv_sec = 60;
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Parses a merged pass summary of the shape "changed X/Y functions";
/// false when the summary has any other shape.
bool parse_changed_summary(const std::string& summary, std::uint64_t* changed,
                           std::uint64_t* total) {
  unsigned long long x = 0;
  unsigned long long y = 0;
  if (std::sscanf(summary.c_str(), "changed %llu/%llu functions", &x, &y) !=
      2) {
    return false;
  }
  *changed = x;
  *total = y;
  return true;
}

}  // namespace

std::size_t FingerprintShardPolicy::shard_for(std::uint64_t fingerprint,
                                              std::size_t num_shards) const {
  if (num_shards == 0) {
    return 0;
  }
  return static_cast<std::size_t>(mix64(fingerprint) % num_shards);
}

std::string ShardAddress::describe() const {
  if (tcp) {
    return "tcp:" + endpoint.host + ":" + std::to_string(endpoint.port);
  }
  return "unix:" + unix_path;
}

std::optional<ShardAddress> parse_shard_address(const std::string& text,
                                                std::string* error) {
  ShardAddress address;
  std::string rest = text;
  if (rest.rfind("unix:", 0) == 0) {
    address.unix_path = rest.substr(5);
    if (address.unix_path.empty()) {
      if (error != nullptr) {
        *error = "empty unix socket path in shard address '" + text + "'";
      }
      return std::nullopt;
    }
    return address;
  }
  if (rest.rfind("tcp:", 0) == 0) {
    rest = rest.substr(4);
  } else if (rest.find('/') != std::string::npos) {
    // A bare filesystem path.
    address.unix_path = rest;
    return address;
  }
  auto endpoint = parse_host_port(rest, error);
  if (!endpoint.has_value()) {
    return std::nullopt;
  }
  if (endpoint->port == 0) {
    if (error != nullptr) {
      *error = "shard address '" + text + "' needs an explicit port";
    }
    return std::nullopt;
  }
  address.tcp = true;
  address.endpoint = std::move(*endpoint);
  return address;
}

Router::Router(RouterConfig config, std::unique_ptr<ShardPolicy> policy)
    : config_(std::move(config)), policy_(std::move(policy)) {
  if (policy_ == nullptr) {
    policy_ = std::make_unique<FingerprintShardPolicy>();
  }
  for (const ShardAddress& address : config_.shards) {
    auto shard = std::make_unique<ShardConnection>();
    shard->stats.address = address.describe();
    shards_.push_back(std::move(shard));
  }
}

Router::~Router() { shutdown(); }

bool Router::start() {
  if (started_) {
    error_ = "router already started";
    return false;
  }
  if (config_.shards.empty()) {
    error_ = "no shards configured";
    return false;
  }
  if (config_.socket_path.empty() && config_.tcp_host.empty()) {
    error_ = "no listener configured (need a socket path or a TCP endpoint)";
    return false;
  }
  if (!config_.socket_path.empty()) {
    host_.add_listener(make_unix_listener(config_.socket_path));
  }
  if (!config_.tcp_host.empty()) {
    host_.add_listener(make_tcp_listener(config_.tcp_host, config_.tcp_port));
  }
  host_.set_io_timeout(config_.io_timeout_seconds);
  start_time_ = Clock::now();
  if (!host_.start([this](int fd) { handle_connection(fd); }, &error_)) {
    return false;
  }
  started_ = true;
  return true;
}

void Router::shutdown() {
  if (!started_) {
    return;
  }
  host_.stop();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->fd >= 0) {
      close(shard->fd);
      shard->fd = -1;
    }
  }
  started_ = false;
}

void Router::handle_connection(int fd) {
  std::string io_error;
  for (;;) {
    std::string payload;
    io_error.clear();
    std::uint32_t peer_version = 0;
    const FrameStatus status =
        read_frame(fd, &payload, &io_error, &peer_version);
    if (status == FrameStatus::kClosed || status == FrameStatus::kIdle) {
      break;
    }
    if (status == FrameStatus::kTimeout) {
      record_timeout();
      write_response(fd, timeout_response("request timed out: " + io_error),
                     &io_error);
      break;
    }
    if (status == FrameStatus::kVersionMismatch) {
      record_version_mismatch();
      write_response(fd, version_mismatch_response(peer_version), &io_error);
      break;
    }
    if (status == FrameStatus::kError) {
      record_malformed();
      write_response(fd, error_response("malformed request: " + io_error),
                     &io_error);
      break;
    }
    const auto accepted = Clock::now();
    ByteReader reader(payload);
    auto request = CompileRequest::deserialize(reader);
    if (!request.has_value()) {
      record_malformed();
      if (!write_response(
              fd, error_response("malformed request: undecodable payload"),
              &io_error)) {
        break;
      }
      continue;
    }
    std::string frontend_label;
    std::string machine_label;
    CompileResponse response =
        route_request(std::move(*request), &frontend_label, &machine_label);
    record_request(response, ms_since(accepted), frontend_label,
                   machine_label);
    if (!write_response(fd, response, &io_error)) {
      break;
    }
  }
}

std::optional<CompileResponse> Router::resolve(
    const CompileRequest& request, std::vector<RoutedFunction>* out,
    std::string* frontend, std::string* machine) {
  // Mirror CompileServer::resolve exactly: the router must reject what
  // a server would reject, with the same error text, so a client cannot
  // tell the two apart.
  const frontend::Frontend* fe = resolve_frontend(request.frontend);
  if (fe == nullptr) {
    return error_response(unknown_frontend_error(request.frontend));
  }
  if (!request.machine.empty() &&
      machine::find_machine(request.machine) == nullptr) {
    return error_response(unknown_machine_error(request.machine));
  }
  std::set<std::string> names;
  std::vector<RoutedFunction> routed;
  for (const std::string& name : request.kernels) {
    auto kernel = workload::make_kernel(name);
    if (!kernel.has_value()) {
      return error_response("unknown kernel '" + name + "'");
    }
    if (!names.insert(kernel->func.name()).second) {
      return error_response("duplicate function name '" +
                            kernel->func.name() + "' in request");
    }
    RoutedFunction rf;
    rf.kernel = name;
    rf.func = std::move(kernel->func);
    routed.push_back(std::move(rf));
  }
  if (!request.module_text.empty()) {
    frontend::ParseResult parsed = fe->parse(request.module_text);
    if (!parsed.ok()) {
      return error_response(module_text_error(parsed));
    }
    for (ir::Function& func : parsed.module->functions()) {
      if (!names.insert(func.name()).second) {
        return error_response("duplicate function name '" + func.name() +
                              "' in request");
      }
      RoutedFunction rf;
      rf.func = std::move(func);
      routed.push_back(std::move(rf));
    }
  }
  if (routed.empty()) {
    return error_response("empty request: no kernels and no module text");
  }
  ir::Module check;
  for (RoutedFunction& rf : routed) {
    check.add_function(std::move(rf.func));
  }
  if (const auto issues = ir::verify(check); !issues.empty()) {
    return error_response("malformed input module: " +
                          issues.front().message);
  }
  for (std::size_t i = 0; i < routed.size(); ++i) {
    routed[i].func = std::move(check.functions()[i]);
    routed[i].index = i;
    routed[i].fingerprint = ir::fingerprint(routed[i].func);
    routed[i].shard =
        policy_->shard_for(routed[i].fingerprint, shards_.size());
  }
  *out = std::move(routed);
  if (frontend != nullptr) {
    *frontend = fe->name();
  }
  if (machine != nullptr) {
    *machine = request.machine.empty() ? "default" : request.machine;
  }
  return std::nullopt;
}

CompileResponse Router::route_request(CompileRequest request,
                                      std::string* frontend,
                                      std::string* machine) {
  std::vector<RoutedFunction> routed;
  if (auto immediate = resolve(request, &routed, frontend, machine)) {
    return std::move(*immediate);
  }

  // Split into per-shard sub-requests. Within a sub-request, kernels
  // come before module-text functions (a server resolves them in that
  // order), each group keeping the client's relative order — `mapping`
  // records which client position each sub-response slot answers.
  struct Slice {
    CompileRequest sub;
    std::vector<std::size_t> mapping;
    std::size_t home = 0;
  };
  std::map<std::size_t, Slice> slices;
  for (const RoutedFunction& rf : routed) {
    Slice& slice = slices[rf.shard];
    slice.home = rf.shard;
    if (!rf.kernel.empty()) {
      slice.sub.kernels.push_back(rf.kernel);
    }
  }
  for (auto& [shard, slice] : slices) {
    slice.sub.spec = request.spec;
    slice.sub.checkpoints = request.checkpoints;
    slice.sub.analysis_cache = request.analysis_cache;
    // v5: the machine name forwards verbatim (each shard stands up the
    // same registry machine); the frontend does not — module-text
    // slices are re-printed canonical .tir regardless of what language
    // the client wrote.
    slice.sub.machine = request.machine;
    for (const RoutedFunction& rf : routed) {
      if (rf.shard != shard || !rf.kernel.empty()) {
        continue;
      }
      if (!slice.sub.module_text.empty()) {
        slice.sub.module_text += '\n';
      }
      slice.sub.module_text += ir::to_string(rf.func);
    }
    // Mapping in sub-request order: kernel-origin first, then
    // module-origin, each in client order.
    for (const RoutedFunction& rf : routed) {
      if (rf.shard == shard && !rf.kernel.empty()) {
        slice.mapping.push_back(rf.index);
      }
    }
    for (const RoutedFunction& rf : routed) {
      if (rf.shard == shard && rf.kernel.empty()) {
        slice.mapping.push_back(rf.index);
      }
    }
  }
  if (slices.size() > 1) {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    ++split_requests_;
  }

  // Forward each slice: home shard first, then deterministic
  // route-around — (home + 1) % N onward — when the home shard is
  // unreachable. Compiles are pure, so a re-aimed slice still yields
  // byte-identical results; only cache locality suffers.
  std::vector<std::pair<const Slice*, CompileResponse>> answered;
  for (auto& [shard, slice] : slices) {
    std::optional<CompileResponse> sub_response;
    for (std::size_t hop = 0; hop < shards_.size(); ++hop) {
      const std::size_t target = (shard + hop) % shards_.size();
      sub_response =
          forward(target, slice.sub, slice.mapping.size(), hop != 0);
      if (sub_response.has_value()) {
        break;
      }
    }
    if (!sub_response.has_value()) {
      return busy_response(
          "no shard reachable (" + std::to_string(shards_.size()) +
          " configured); retry with backoff");
    }
    if (!sub_response->ok && sub_response->code == ResponseCode::kBusy) {
      // One saturated shard makes the whole client request BUSY.
      // Re-aiming the slice at a sibling would convert one shard's
      // overload into fleet overload; propagate and let the client
      // back off instead.
      return busy_response("shard " + shards_[shard]->stats.address +
                           " at capacity: " + sub_response->error);
    }
    if (!sub_response->ok && sub_response->functions.empty()) {
      // A request-level refusal (not tied to any one function). The
      // router pre-validates exactly as a server does, so this is a
      // shard-side fault worth surfacing verbatim.
      return error_response(sub_response->error);
    }
    if (sub_response->functions.size() != slice.mapping.size()) {
      return error_response(
          "shard " + shards_[shard]->stats.address + " answered " +
          std::to_string(sub_response->functions.size()) + " functions for " +
          std::to_string(slice.mapping.size()) + " requested");
    }
    answered.emplace_back(&slice, std::move(*sub_response));
  }

  // Merge in the client's order: per-function results land back at
  // their original positions; statistics merge exactly as
  // ModulePipelineResult would have merged them in one process.
  CompileResponse response;
  response.ok = true;
  response.code = ResponseCode::kOk;
  response.functions.resize(routed.size());
  double server_seconds = 0;
  for (auto& [slice, sub] : answered) {
    for (std::size_t i = 0; i < slice->mapping.size(); ++i) {
      response.functions[slice->mapping[i]] = std::move(sub.functions[i]);
    }
    server_seconds = std::max(server_seconds, sub.server_seconds);
    if (sub.cache_attached) {
      response.cache_attached = true;
      response.cache.hits += sub.cache.hits;
      response.cache.misses += sub.cache.misses;
      response.cache.stores += sub.cache.stores;
      response.cache.bad_entries += sub.cache.bad_entries;
      response.cache.evictions += sub.cache.evictions;
      response.cache.store_failures += sub.cache.store_failures;
      response.cache.lookup_faults += sub.cache.lookup_faults;
      response.cache.stage_hits += sub.cache.stage_hits;
      response.cache.stage_misses += sub.cache.stage_misses;
      response.cache.stage_stores += sub.cache.stage_stores;
    }
  }
  response.server_seconds = server_seconds;
  for (const FunctionResult& f : response.functions) {
    if (!f.ok) {
      response.ok = false;
      response.code = ResponseCode::kError;
      response.error = "function '" + f.name + "': " + f.error;
      break;
    }
  }

  // Pass stats merge position-wise (every slice ran the same spec, so
  // positions align); the "changed X/Y functions" summaries sum their
  // numerators and denominators.
  std::vector<pipeline::PassRunStats> merged;
  std::vector<std::uint64_t> changed_counts;
  std::vector<std::uint64_t> contributor_counts;
  for (auto& [slice, sub] : answered) {
    (void)slice;
    if (sub.pass_stats.empty()) {
      continue;
    }
    if (merged.empty()) {
      merged = std::move(sub.pass_stats);
      changed_counts.assign(merged.size(), 0);
      contributor_counts.assign(merged.size(), 0);
      for (std::size_t i = 0; i < merged.size(); ++i) {
        parse_changed_summary(merged[i].summary, &changed_counts[i],
                              &contributor_counts[i]);
      }
      continue;
    }
    for (std::size_t i = 0; i < merged.size() && i < sub.pass_stats.size();
         ++i) {
      const pipeline::PassRunStats& s = sub.pass_stats[i];
      merged[i].seconds += s.seconds;
      merged[i].instructions_after += s.instructions_after;
      merged[i].vregs_after += s.vregs_after;
      merged[i].changed = merged[i].changed || s.changed;
      std::uint64_t changed = 0;
      std::uint64_t total = 0;
      if (parse_changed_summary(s.summary, &changed, &total)) {
        changed_counts[i] += changed;
        contributor_counts[i] += total;
      }
    }
  }
  for (std::size_t i = 0; i < merged.size(); ++i) {
    merged[i].summary = "changed " + std::to_string(changed_counts[i]) + "/" +
                        std::to_string(contributor_counts[i]) + " functions";
  }
  response.pass_stats = std::move(merged);

  std::map<std::string, pipeline::AnalysisManager::AnalysisStats> by_name;
  for (auto& [slice, sub] : answered) {
    (void)slice;
    for (const pipeline::AnalysisManager::AnalysisStats& s :
         sub.analysis_stats) {
      auto& m = by_name[s.name];
      m.name = s.name;
      m.hits += s.hits;
      m.misses += s.misses;
      m.puts += s.puts;
      m.invalidations += s.invalidations;
    }
  }
  for (auto& [name, s] : by_name) {
    response.analysis_stats.push_back(std::move(s));
  }
  return response;
}

std::optional<CompileResponse> Router::forward(std::size_t shard_index,
                                               const CompileRequest& sub,
                                               std::size_t function_count,
                                               bool routed_around) {
  ShardConnection& shard = *shards_[shard_index];
  const ShardAddress& address = config_.shards[shard_index];

  // Router-side admission: never queue invisibly on the pooled
  // connection. Past the waiter bound, shed with a structured BUSY the
  // client can back off on.
  struct WaiterGuard {
    std::atomic<int>& count;
    ~WaiterGuard() { count.fetch_sub(1, std::memory_order_relaxed); }
  };
  const int waiting = shard.waiters.fetch_add(1, std::memory_order_relaxed);
  WaiterGuard guard{shard.waiters};
  if (config_.max_shard_waiters > 0 &&
      waiting >= static_cast<int>(config_.max_shard_waiters)) {
    shard.shed.fetch_add(1, std::memory_order_relaxed);
    auto response = busy_response(
        "router: " + std::to_string(waiting) +
        " requests already waiting on shard " + shard.stats.address +
        " (max " + std::to_string(config_.max_shard_waiters) +
        "); retry with backoff");
    return response;
  }
  std::lock_guard<std::mutex> lock(shard.mu);

  // Two passes: the pooled connection may have gone stale since the
  // last request (server restarted, idle deadline fired), in which case
  // the first attempt fails mid-flight and the second dials fresh.
  // Re-sending is safe: compiles are pure and cached, so a request the
  // shard may already have executed is idempotent.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (shard.fd < 0) {
      std::string dial_error;
      shard.fd =
          address.tcp
              ? connect_tcp_retry(address.endpoint.host, address.endpoint.port,
                                  config_.connect_timeout_seconds, &dial_error)
              : connect_unix_retry(address.unix_path,
                                   config_.connect_timeout_seconds,
                                   &dial_error);
      if (shard.fd < 0) {
        break;
      }
      apply_send_deadline(shard.fd);
      ++shard.stats.connects;
    }
    std::string io_error;
    if (!write_request(shard.fd, sub, &io_error)) {
      close(shard.fd);
      shard.fd = -1;
      continue;
    }
    auto response = read_response(shard.fd, &io_error);
    if (!response.has_value()) {
      close(shard.fd);
      shard.fd = -1;
      continue;
    }
    ++shard.stats.forwarded;
    shard.stats.functions += function_count;
    if (routed_around) {
      ++shard.stats.routed_around_in;
    }
    if (response->ok) {
      ++shard.stats.ok;
    } else if (response->code == ResponseCode::kBusy) {
      ++shard.stats.busy;
    } else {
      ++shard.stats.errors;
    }
    return response;
  }
  return std::nullopt;
}

void Router::record_request(const CompileResponse& response,
                            double latency_ms, const std::string& frontend,
                            const std::string& machine) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  ++requests_;
  if (response.ok) {
    ++requests_ok_;
  } else if (response.code == ResponseCode::kBusy) {
    ++requests_busy_;
  } else {
    ++requests_failed_;
  }
  if (!frontend.empty() && !machine.empty()) {
    PairMetrics& pair = pair_metrics_[{frontend, machine}];
    pair.frontend = frontend;
    pair.machine = machine;
    ++pair.requests;
    if (response.ok) {
      ++pair.requests_ok;
    }
    pair.functions += response.functions.size();
    pair.functions_from_cache += response.cache_hits();
  }
  functions_ += response.functions.size();
  if (latencies_ms_.size() < kLatencyWindow) {
    latencies_ms_.push_back(latency_ms);
  } else {
    latencies_ms_[latency_next_] = latency_ms;
    latency_next_ = (latency_next_ + 1) % kLatencyWindow;
  }
}

void Router::record_malformed() {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  ++malformed_;
}

void Router::record_timeout() {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  ++timeouts_;
}

void Router::record_version_mismatch() {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  ++version_mismatches_;
}

RouterMetrics Router::metrics() const {
  RouterMetrics m;
  m.connections = host_.connections_accepted();
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    m.requests = requests_;
    m.requests_ok = requests_ok_;
    m.requests_failed = requests_failed_;
    m.requests_busy = requests_busy_;
    m.malformed = malformed_;
    m.timeouts = timeouts_;
    m.version_mismatches = version_mismatches_;
    m.functions = functions_;
    m.split_requests = split_requests_;
    m.uptime_seconds =
        std::chrono::duration<double>(Clock::now() - start_time_).count();
    if (!latencies_ms_.empty()) {
      m.latency_p50_ms = stats::percentile(latencies_ms_, 50.0);
      m.latency_p95_ms = stats::percentile(latencies_ms_, 95.0);
      m.latency_p99_ms = stats::percentile(latencies_ms_, 99.0);
    }
    for (const auto& [key, pair] : pair_metrics_) {
      m.pairs.push_back(pair);
    }
  }
  const double up = m.uptime_seconds > 0 ? m.uptime_seconds : 1e-12;
  m.requests_per_sec = static_cast<double>(m.requests) / up;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    m.shards.push_back(shard->stats);
    m.shards.back().shed = shard->shed.load(std::memory_order_relaxed);
  }
  return m;
}

TextTable Router::metrics_table(const std::string& title) const {
  const RouterMetrics m = metrics();
  TextTable table(title);
  table.set_header({"metric", "value"});
  table.add_row({"uptime s", TextTable::num(m.uptime_seconds, 1)});
  table.add_row({"connections", std::to_string(m.connections)});
  table.add_row({"requests", std::to_string(m.requests)});
  table.add_row({"requests ok", std::to_string(m.requests_ok)});
  table.add_row({"requests failed", std::to_string(m.requests_failed)});
  table.add_row({"requests busy", std::to_string(m.requests_busy)});
  table.add_row({"malformed", std::to_string(m.malformed)});
  table.add_row({"timeouts", std::to_string(m.timeouts)});
  table.add_row(
      {"version mismatches", std::to_string(m.version_mismatches)});
  table.add_row({"requests/sec", TextTable::num(m.requests_per_sec, 2)});
  table.add_row({"functions", std::to_string(m.functions)});
  table.add_row({"split requests", std::to_string(m.split_requests)});
  table.add_row({"latency p50 ms", TextTable::num(m.latency_p50_ms, 2)});
  table.add_row({"latency p95 ms", TextTable::num(m.latency_p95_ms, 2)});
  table.add_row({"latency p99 ms", TextTable::num(m.latency_p99_ms, 2)});
  for (const PairMetrics& pair : m.pairs) {
    const std::string label = pair.frontend + "/" + pair.machine;
    table.add_row({label + " requests", std::to_string(pair.requests)});
    table.add_row({label + " functions", std::to_string(pair.functions)});
  }
  for (std::size_t i = 0; i < m.shards.size(); ++i) {
    const ShardMetrics& s = m.shards[i];
    const std::string prefix = "shard " + std::to_string(i) + " ";
    table.add_row({prefix + "address", s.address});
    table.add_row({prefix + "forwarded", std::to_string(s.forwarded)});
    table.add_row({prefix + "functions", std::to_string(s.functions)});
    table.add_row({prefix + "busy", std::to_string(s.busy)});
    table.add_row({prefix + "errors", std::to_string(s.errors)});
    table.add_row({prefix + "connects", std::to_string(s.connects)});
    table.add_row(
        {prefix + "routed-around in", std::to_string(s.routed_around_in)});
    table.add_row({prefix + "shed", std::to_string(s.shed)});
  }
  return table;
}

std::string Router::metrics_json() const {
  const RouterMetrics m = metrics();
  std::ostringstream json;
  json << "{\n"
       << "  \"uptime_seconds\": " << m.uptime_seconds << ",\n"
       << "  \"connections\": " << m.connections << ",\n"
       << "  \"requests\": " << m.requests << ",\n"
       << "  \"requests_ok\": " << m.requests_ok << ",\n"
       << "  \"requests_failed\": " << m.requests_failed << ",\n"
       << "  \"requests_busy\": " << m.requests_busy << ",\n"
       << "  \"malformed\": " << m.malformed << ",\n"
       << "  \"timeouts\": " << m.timeouts << ",\n"
       << "  \"version_mismatches\": " << m.version_mismatches << ",\n"
       << "  \"requests_per_sec\": " << m.requests_per_sec << ",\n"
       << "  \"functions\": " << m.functions << ",\n"
       << "  \"split_requests\": " << m.split_requests << ",\n"
       << "  \"latency_p50_ms\": " << m.latency_p50_ms << ",\n"
       << "  \"latency_p95_ms\": " << m.latency_p95_ms << ",\n"
       << "  \"latency_p99_ms\": " << m.latency_p99_ms << ",\n";
  json << "  \"pairs\": [";
  for (std::size_t i = 0; i < m.pairs.size(); ++i) {
    const PairMetrics& pair = m.pairs[i];
    json << (i == 0 ? "" : ", ") << "{\"frontend\": \"" << pair.frontend
         << "\", \"machine\": \"" << pair.machine
         << "\", \"requests\": " << pair.requests
         << ", \"requests_ok\": " << pair.requests_ok
         << ", \"functions\": " << pair.functions
         << ", \"functions_from_cache\": " << pair.functions_from_cache
         << "}";
  }
  json << "],\n"
       << "  \"shards\": [";
  for (std::size_t i = 0; i < m.shards.size(); ++i) {
    const ShardMetrics& s = m.shards[i];
    json << (i == 0 ? "\n" : ",\n")
         << "    {\n"
         << "      \"address\": \"" << s.address << "\",\n"
         << "      \"forwarded\": " << s.forwarded << ",\n"
         << "      \"ok\": " << s.ok << ",\n"
         << "      \"busy\": " << s.busy << ",\n"
         << "      \"errors\": " << s.errors << ",\n"
         << "      \"connects\": " << s.connects << ",\n"
         << "      \"routed_around_in\": " << s.routed_around_in << ",\n"
         << "      \"shed\": " << s.shed << ",\n"
         << "      \"functions\": " << s.functions << "\n"
         << "    }";
  }
  json << "\n  ]\n}\n";
  return json.str();
}

bool Router::write_metrics_json(const std::string& path,
                                std::string* error) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << metrics_json();
    if (!out.good()) {
      if (error != nullptr) {
        *error = "cannot write '" + tmp + "'";
      }
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) {
      *error = "cannot rename '" + tmp + "' to '" + path +
               "': " + std::strerror(errno);
    }
    return false;
  }
  return true;
}

}  // namespace tadfa::service
