// Frontend/machine name resolution shared by server and router.
//
// The router must reject exactly what a server would reject, with the
// same error text, so a client cannot tell the two apart — these
// helpers are the single source of that text.
#pragma once

#include <cstdint>
#include <string>

#include "frontend/frontend.hpp"
#include "machine/machine_config.hpp"

namespace tadfa::service {

/// One (frontend, machine) pair's share of a server's or router's
/// aggregate counters — metrics stay legible when one endpoint fields
/// the whole grid.
struct PairMetrics {
  std::string frontend;
  std::string machine;
  std::uint64_t requests = 0;
  std::uint64_t requests_ok = 0;
  std::uint64_t functions = 0;
  std::uint64_t functions_from_cache = 0;
};

/// "unknown frontend 'x' (available: tir, kernels, texpr)".
std::string unknown_frontend_error(const std::string& name);

/// "unknown machine 'x' (available: default, small, ...)".
std::string unknown_machine_error(const std::string& name);

/// The frontend for a request's (possibly empty) frontend field: empty
/// means "tir" (the pre-v5 behavior). nullptr when unknown.
const frontend::Frontend* resolve_frontend(const std::string& name);

/// Formats a failed parse for the request-level error response:
/// "module text line 3: ..." for positioned diagnostics (byte-identical
/// to the pre-seam .tir error text), "module text: ..." otherwise.
std::string module_text_error(const frontend::ParseResult& result);

}  // namespace tadfa::service
