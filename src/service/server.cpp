#include "service/server.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "frontend/frontend.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "machine/machine_config.hpp"
#include "pipeline/rig.hpp"
#include "pipeline/spec.hpp"
#include "service/naming.hpp"
#include "support/statistics.hpp"
#include "workload/kernels.hpp"

namespace tadfa::service {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

/// A batch of compatible pendings compiled as one module: every member
/// shares the canonical spec and manager toggles, and no two members'
/// functions collide on a name (module-level ir::verify would reject
/// duplicates, and results are demuxed back by position).
struct CompileServer::Group {
  std::string key;
  std::set<std::string> names;
  ir::Module module;
  /// Edit-aware groups are singletons: the dependency graph is keyed by
  /// the module's name set, so batching an edit-aware pending with
  /// strangers would move it into a different module slot on every mix.
  bool exclusive = false;
  std::vector<Pending*> members;
  /// members[i]'s functions occupy module positions
  /// [offsets[i], offsets[i] + counts[i]).
  std::vector<std::size_t> offsets;
  std::vector<std::size_t> counts;
};

/// A lazily-built rig + driver for requests naming a machine other than
/// the one the server was constructed around. The rig member must
/// precede the driver: the driver's context points into the rig.
struct CompileServer::MachineDriver {
  pipeline::CompileRig rig;
  pipeline::CompilationDriver driver;
  MachineDriver(machine::MachineConfig config, pipeline::RigOptions options)
      : rig(std::move(config), std::move(options)), driver(rig.context()) {}
};

CompileServer::CompileServer(pipeline::PipelineContext ctx,
                             ServerConfig config)
    : config_(std::move(config)),
      base_ctx_(ctx),
      base_machine_(ctx.machine != nullptr ? ctx.machine->name : "default"),
      driver_(base_ctx_) {
  driver_.set_jobs(config_.jobs);
}

CompileServer::~CompileServer() { shutdown(); }

pipeline::CompilationDriver& CompileServer::driver_for(
    const std::string& machine) {
  if (machine.empty() || machine == base_machine_) {
    return driver_;
  }
  auto it = machine_drivers_.find(machine);
  if (it == machine_drivers_.end()) {
    // resolve() only admits registry names, so the lookup cannot miss.
    const machine::MachineConfig* config = machine::find_machine(machine);
    pipeline::RigOptions options;
    options.subdivision = base_ctx_.grid->subdivision();
    options.step_kernel = base_ctx_.grid->step_kernel();
    options.dfa_config = base_ctx_.dfa_config;
    options.policy_seed = base_ctx_.policy_seed;
    auto built = std::make_unique<MachineDriver>(*config, options);
    built->driver.set_jobs(config_.jobs);
    if (cache_.has_value()) {
      built->driver.set_result_cache(&*cache_);
      built->driver.set_stage_policy(config_.stage_policy);
    }
    it = machine_drivers_.emplace(machine, std::move(built)).first;
  }
  return it->second->driver;
}

bool CompileServer::start() {
  if (started_) {
    error_ = "server already started";
    return false;
  }
  if (config_.socket_path.empty() && config_.tcp_host.empty()) {
    error_ = "no listener configured (need a socket path or a TCP endpoint)";
    return false;
  }
  if (!config_.cache_dir.empty()) {
    cache_.emplace(config_.cache_dir, config_.cache_max_bytes);
    if (!cache_->ok()) {
      error_ = cache_->error();
      cache_.reset();
      return false;
    }
    driver_.set_result_cache(&*cache_);
    driver_.set_stage_policy(config_.stage_policy);
  }

  if (!config_.socket_path.empty()) {
    host_.add_listener(make_unix_listener(config_.socket_path));
  }
  if (!config_.tcp_host.empty()) {
    host_.add_listener(make_tcp_listener(config_.tcp_host, config_.tcp_port));
  }
  host_.set_io_timeout(config_.io_timeout_seconds);

  start_time_ = Clock::now();
  stopping_.store(false);
  dispatcher_stop_ = false;
  dispatch_thread_ = std::thread(&CompileServer::dispatch_loop, this);
  if (!host_.start([this](int fd) { handle_connection(fd); }, &error_)) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      dispatcher_stop_ = true;
    }
    queue_cv_.notify_all();
    dispatch_thread_.join();
    return false;
  }
  started_ = true;
  return true;
}

void CompileServer::shutdown() {
  if (!started_) {
    return;
  }
  // Stop accepting and drain every live connection: a handler
  // mid-request still enqueues, waits for its response, and writes it.
  stopping_.store(true);
  host_.stop();

  // With every producer gone, let the dispatcher finish the queue (it
  // is already empty — each handler waited for its response) and stop.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    dispatcher_stop_ = true;
  }
  queue_cv_.notify_all();
  dispatch_thread_.join();

  if (cache_.has_value()) {
    cache_->flush();
  }
  started_ = false;
}

void CompileServer::handle_connection(int fd) {
  std::string io_error;
  for (;;) {
    std::string payload;
    io_error.clear();
    std::uint32_t peer_version = 0;
    const FrameStatus status =
        read_frame(fd, &payload, &io_error, &peer_version);
    if (status == FrameStatus::kClosed || status == FrameStatus::kIdle) {
      // A clean close, or an idle connection past the I/O deadline:
      // free the handler thread without ceremony.
      break;
    }
    if (status == FrameStatus::kTimeout) {
      // The peer stalled mid-frame. Best-effort structured error, then
      // hang up — the stream position is unknowable.
      record_timeout();
      write_response(fd, timeout_response("request timed out: " + io_error),
                     &io_error);
      break;
    }
    if (status == FrameStatus::kVersionMismatch) {
      // Explicit version refusal: a v2 client gets a structured frame
      // naming both versions, never a hang.
      record_version_mismatch();
      write_response(fd, version_mismatch_response(peer_version), &io_error);
      break;
    }
    if (status == FrameStatus::kError) {
      // The stream cannot be trusted past a framing error; answer with
      // a structured error (best effort) and hang up.
      record_malformed();
      write_response(fd, error_response("malformed request: " + io_error),
                     &io_error);
      break;
    }
    const auto accepted = Clock::now();
    ByteReader reader(payload);
    auto request = CompileRequest::deserialize(reader);
    if (!request.has_value()) {
      // Framing was intact, the payload was not: respond and keep the
      // connection — the next frame may be fine.
      record_malformed();
      if (!write_response(
              fd, error_response("malformed request: undecodable payload"),
              &io_error)) {
        break;
      }
      continue;
    }

    std::unique_ptr<Pending> pending;
    CompileResponse response;
    std::string frontend_label;
    std::string machine_label;
    if (auto immediate = resolve(std::move(*request), &pending)) {
      response = std::move(*immediate);
    } else {
      frontend_label = pending->frontend;
      machine_label = pending->machine;
      pending->accepted = accepted;
      std::future<CompileResponse> future;
      if (auto shed = admit(std::move(pending), &future)) {
        response = std::move(*shed);
      } else {
        response = future.get();
      }
    }
    record_request(response, ms_since(accepted), frontend_label,
                   machine_label);
    if (!write_response(fd, response, &io_error)) {
      break;
    }
  }
}

std::optional<CompileResponse> CompileServer::admit(
    std::unique_ptr<Pending> pending, std::future<CompileResponse>* future) {
  *future = pending->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (config_.max_queue > 0 && queue_.size() >= config_.max_queue &&
        !dispatcher_stop_) {
      // Bounded queue full: shed with a structured BUSY instead of
      // queuing unboundedly. The client retries with backoff.
      return busy_response(
          "server at capacity: " + std::to_string(queue_.size()) +
          " requests queued (max " + std::to_string(config_.max_queue) +
          "); retry with backoff");
    }
    queue_.push_back(std::move(pending));
    queue_peak_ = std::max(queue_peak_, queue_.size());
  }
  queue_cv_.notify_one();
  return std::nullopt;
}

std::optional<CompileResponse> CompileServer::resolve(
    CompileRequest request, std::unique_ptr<Pending>* out) {
  const std::string spec_text =
      request.spec.empty() ? config_.default_spec : request.spec;
  pipeline::SpecError spec_error;
  auto passes = pipeline::parse_pipeline_spec(spec_text, &spec_error);
  if (!passes.has_value()) {
    return error_response("bad pipeline spec: " +
                          pipeline::format_spec_error(spec_error));
  }

  // v5: resolve the frontend and machine names before touching any
  // payload — an unknown name is a structured error, never a fallback.
  const frontend::Frontend* fe = resolve_frontend(request.frontend);
  if (fe == nullptr) {
    return error_response(unknown_frontend_error(request.frontend));
  }
  const std::string machine_name =
      request.machine.empty() ? base_machine_ : request.machine;
  if (machine_name != base_machine_ &&
      machine::find_machine(machine_name) == nullptr) {
    return error_response(unknown_machine_error(request.machine));
  }

  auto pending = std::make_unique<Pending>();
  pending->passes = std::move(*passes);
  pending->canonical_spec = pipeline::spec_to_string(pending->passes);
  pending->checkpoints = request.checkpoints;
  pending->analysis_cache = request.analysis_cache;
  pending->edit_aware = request.edit_aware;
  pending->frontend = fe->name();
  pending->machine = machine_name;

  std::set<std::string> names;
  for (const std::string& name : request.kernels) {
    auto kernel = workload::make_kernel(name);
    if (!kernel.has_value()) {
      return error_response("unknown kernel '" + name + "'");
    }
    if (!names.insert(kernel->func.name()).second) {
      return error_response("duplicate function name '" +
                            kernel->func.name() + "' in request");
    }
    pending->functions.push_back(std::move(kernel->func));
  }
  if (!request.module_text.empty()) {
    frontend::ParseResult parsed = fe->parse(request.module_text);
    if (!parsed.ok()) {
      // For the tir frontend this reproduces the pre-v5 error text
      // ("module text line N: message") byte for byte.
      return error_response(module_text_error(parsed));
    }
    ir::Module& module = *parsed.module;
    for (ir::Function& func : module.functions()) {
      if (!names.insert(func.name()).second) {
        return error_response("duplicate function name '" + func.name() +
                              "' in request");
      }
      pending->functions.push_back(std::move(func));
    }
    pending->references = module.references();
  }
  if (pending->functions.empty()) {
    return error_response("empty request: no kernels and no module text");
  }
  ir::Module check;
  for (ir::Function& func : pending->functions) {
    check.add_function(std::move(func));
  }
  for (const ir::ModuleReference& ref : pending->references) {
    check.add_reference(ref.from, ref.to);
  }
  if (const auto issues = ir::verify(check); !issues.empty()) {
    return error_response("malformed input module: " +
                          issues.front().message);
  }
  pending->functions = std::move(check.functions());

  *out = std::move(pending);
  return std::nullopt;
}

void CompileServer::dispatch_loop() {
  auto last_flush = Clock::now();
  const auto flush_interval = std::chrono::duration<double>(
      config_.flush_every_seconds > 0 ? config_.flush_every_seconds : 5.0);
  for (;;) {
    std::vector<std::unique_ptr<Pending>> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait_for(lock, flush_interval, [&] {
        return dispatcher_stop_ || !queue_.empty();
      });
      if (queue_.empty() && dispatcher_stop_) {
        return;
      }
      while (!queue_.empty()) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (!batch.empty()) {
      process_batch(std::move(batch));
    }
    if (cache_.has_value() &&
        Clock::now() - last_flush >= flush_interval) {
      // A long-lived server must persist the cache index on a clock,
      // not on its destructor.
      cache_->flush();
      last_flush = Clock::now();
    }
  }
}

void CompileServer::respond(Pending& pending, CompileResponse response) {
  if (pending.responded) {
    return;
  }
  pending.responded = true;
  pending.promise.set_value(std::move(response));
}

void CompileServer::process_batch(
    std::vector<std::unique_ptr<Pending>> batch) {
  // Whatever happens below, every pending's promise must be fulfilled —
  // a handler is blocked on it, and an unfulfilled promise would wedge
  // that connection and any later shutdown(). An exception anywhere in
  // grouping or response assembly (bad_alloc under a huge batch, a bug)
  // degrades to an internal-error response, never a terminate or hang.
  try {
    process_batch_unguarded(batch);
  } catch (const std::exception& e) {
    for (auto& pending : batch) {
      respond(*pending, error_response(std::string("internal server error: ") +
                                       e.what()));
    }
  } catch (...) {
    for (auto& pending : batch) {
      respond(*pending, error_response("internal server error"));
    }
  }
}

void CompileServer::process_batch_unguarded(
    std::vector<std::unique_ptr<Pending>>& batch) {
  // Greedy batching in arrival order: a pending joins the first open
  // group with its (spec, toggles) key whose names it does not collide
  // with and whose function budget it fits; otherwise it opens one.
  std::vector<Group> groups;
  for (auto& pending : batch) {
    // v5: the machine joins the key — members of one group all compile
    // on the same driver, so mixed-machine batching would be a lie.
    const std::string key = pending->canonical_spec + '\x01' +
                            (pending->checkpoints ? '1' : '0') +
                            (pending->analysis_cache ? '1' : '0') +
                            (pending->edit_aware ? '1' : '0') + '\x01' +
                            pending->machine;
    Group* target = nullptr;
    for (Group& group : groups) {
      if (pending->edit_aware || group.exclusive || group.key != key ||
          group.module.size() + pending->functions.size() >
              config_.max_batch_functions) {
        continue;
      }
      bool collides = false;
      for (const ir::Function& func : pending->functions) {
        if (group.names.count(func.name()) != 0) {
          collides = true;
          break;
        }
      }
      if (!collides) {
        target = &group;
        break;
      }
    }
    if (target == nullptr) {
      groups.emplace_back();
      target = &groups.back();
      target->key = key;
      target->exclusive = pending->edit_aware;
    }
    target->offsets.push_back(target->module.size());
    target->counts.push_back(pending->functions.size());
    for (ir::Function& func : pending->functions) {
      target->names.insert(func.name());
      target->module.add_function(std::move(func));
    }
    for (const ir::ModuleReference& ref : pending->references) {
      target->module.add_reference(ref.from, ref.to);
    }
    target->members.push_back(pending.get());
  }
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    for (const Group& group : groups) {
      ++batches_;
      batched_functions_ += group.module.size();
      max_batch_functions_ = std::max<std::uint64_t>(max_batch_functions_,
                                                     group.module.size());
    }
  }
  for (Group& group : groups) {
    compile_group(group);
  }
}

void CompileServer::compile_group(Group& group) {
  Pending& lead = *group.members.front();
  pipeline::CompilationDriver& driver = driver_for(lead.machine);
  driver.set_checkpoints(lead.checkpoints);
  driver.set_analysis_caching(lead.analysis_cache);
  driver.set_edit_aware(lead.edit_aware);

  pipeline::ModulePipelineResult result;
  std::string failure;
  try {
    result = driver.compile(group.module, lead.passes);
  } catch (const std::exception& e) {
    failure = std::string("uncaught exception: ") + e.what();
  } catch (...) {
    failure = "uncaught non-standard exception";
  }
  if (failure.empty() && result.functions.empty()) {
    // The driver rejected the whole module up front (spec/pass
    // construction error) — every member gets that structured error.
    failure = result.error.empty() ? "module compilation produced no results"
                                   : result.error;
  }

  for (std::size_t m = 0; m < group.members.size(); ++m) {
    Pending& pending = *group.members[m];
    CompileResponse response;
    if (!failure.empty()) {
      response = error_response(failure);
    } else {
      // Slice this member's functions out of the module result and let
      // ModulePipelineResult do the merging it already knows.
      pipeline::ModulePipelineResult member;
      member.jobs = result.jobs;
      for (std::size_t i = 0; i < group.counts[m]; ++i) {
        member.functions.push_back(
            std::move(result.functions[group.offsets[m] + i]));
      }
      response.ok = true;
      response.code = ResponseCode::kOk;
      for (const pipeline::FunctionCompileResult& f : member.functions) {
        FunctionResult out;
        out.name = f.name;
        out.ok = f.run.ok;
        out.error = f.run.error;
        out.from_cache = f.from_cache;
        out.resumed_passes = f.resumed_passes;
        out.printed = ir::to_string(f.run.state.func);
        out.instructions = f.run.state.func.instruction_count();
        out.vregs = f.run.state.func.reg_count();
        out.spilled_regs = f.run.state.spilled_regs;
        out.seconds = f.run.total_seconds;
        out.invalidation = f.reason;
        out.invalidated_via = f.invalidated_via;
        if (!out.ok && response.ok) {
          response.ok = false;
          response.code = ResponseCode::kError;
          response.error = "function '" + out.name + "': " + out.error;
        }
        response.functions.push_back(std::move(out));
      }
      response.pass_stats = member.merged_pass_stats();
      response.analysis_stats = member.merged_analysis_stats();
    }
    if (cache_.has_value()) {
      response.cache_attached = true;
      response.cache = cache_->stats();
    }
    response.server_seconds = ms_since(pending.accepted) / 1e3;
    respond(pending, std::move(response));
  }
}

void CompileServer::record_request(const CompileResponse& response,
                                   double latency_ms,
                                   const std::string& frontend,
                                   const std::string& machine) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  ++requests_;
  if (response.ok) {
    ++requests_ok_;
  } else if (response.code == ResponseCode::kBusy) {
    ++requests_busy_;
  } else {
    ++requests_failed_;
  }
  if (!frontend.empty() && !machine.empty()) {
    PairMetrics& pair = pair_metrics_[{frontend, machine}];
    pair.frontend = frontend;
    pair.machine = machine;
    ++pair.requests;
    if (response.ok) {
      ++pair.requests_ok;
    }
    pair.functions += response.functions.size();
    pair.functions_from_cache += response.cache_hits();
  }
  functions_ += response.functions.size();
  functions_from_cache_ += response.cache_hits();
  prefix_hits_ += response.prefix_hits();
  passes_skipped_ += response.passes_skipped();
  if (latencies_ms_.size() < kLatencyWindow) {
    latencies_ms_.push_back(latency_ms);
  } else {
    latencies_ms_[latency_next_] = latency_ms;
    latency_next_ = (latency_next_ + 1) % kLatencyWindow;
  }
}

void CompileServer::record_malformed() {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  ++malformed_;
}

void CompileServer::record_timeout() {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  ++timeouts_;
}

void CompileServer::record_version_mismatch() {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  ++version_mismatches_;
}

ServerMetrics CompileServer::metrics() const {
  ServerMetrics m;
  m.connections = host_.connections_accepted();
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    m.requests = requests_;
    m.requests_ok = requests_ok_;
    m.requests_failed = requests_failed_;
    m.requests_busy = requests_busy_;
    m.malformed = malformed_;
    m.timeouts = timeouts_;
    m.version_mismatches = version_mismatches_;
    m.functions = functions_;
    m.functions_from_cache = functions_from_cache_;
    m.prefix_hits = prefix_hits_;
    m.passes_skipped = passes_skipped_;
    m.batches = batches_;
    m.max_batch_functions = max_batch_functions_;
    m.avg_batch_functions =
        batches_ == 0 ? 0.0
                      : static_cast<double>(batched_functions_) /
                            static_cast<double>(batches_);
    m.uptime_seconds =
        std::chrono::duration<double>(Clock::now() - start_time_).count();
    if (!latencies_ms_.empty()) {
      m.latency_p50_ms = stats::percentile(latencies_ms_, 50.0);
      m.latency_p95_ms = stats::percentile(latencies_ms_, 95.0);
      m.latency_p99_ms = stats::percentile(latencies_ms_, 99.0);
    }
    for (const auto& [key, pair] : pair_metrics_) {
      m.pairs.push_back(pair);
    }
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    m.queue_depth = queue_.size();
    m.queue_peak = queue_peak_;
  }
  const double up = m.uptime_seconds > 0 ? m.uptime_seconds : 1e-12;
  m.requests_per_sec = static_cast<double>(m.requests) / up;
  m.functions_per_sec = static_cast<double>(m.functions) / up;
  m.warm_hit_rate =
      m.functions == 0 ? 0.0
                       : static_cast<double>(m.functions_from_cache) /
                             static_cast<double>(m.functions);
  if (cache_.has_value()) {
    m.cache_attached = true;
    m.cache = cache_->stats();
  }
  return m;
}

TextTable CompileServer::metrics_table(const std::string& title) const {
  const ServerMetrics m = metrics();
  TextTable table(title);
  table.set_header({"metric", "value"});
  table.add_row({"uptime s", TextTable::num(m.uptime_seconds, 1)});
  table.add_row({"connections", std::to_string(m.connections)});
  table.add_row({"requests", std::to_string(m.requests)});
  table.add_row({"requests ok", std::to_string(m.requests_ok)});
  table.add_row({"requests failed", std::to_string(m.requests_failed)});
  table.add_row({"requests busy", std::to_string(m.requests_busy)});
  table.add_row({"malformed", std::to_string(m.malformed)});
  table.add_row({"timeouts", std::to_string(m.timeouts)});
  table.add_row(
      {"version mismatches", std::to_string(m.version_mismatches)});
  table.add_row({"requests/sec", TextTable::num(m.requests_per_sec, 2)});
  table.add_row({"functions", std::to_string(m.functions)});
  table.add_row({"functions/sec", TextTable::num(m.functions_per_sec, 1)});
  table.add_row({"batches", std::to_string(m.batches)});
  table.add_row(
      {"avg batch functions", TextTable::num(m.avg_batch_functions, 1)});
  table.add_row(
      {"max batch functions", std::to_string(m.max_batch_functions)});
  table.add_row({"queue depth", std::to_string(m.queue_depth)});
  table.add_row({"queue peak", std::to_string(m.queue_peak)});
  table.add_row(
      {"warm hit rate", TextTable::num(m.warm_hit_rate * 100.0, 1) + "%"});
  table.add_row({"prefix hits", std::to_string(m.prefix_hits)});
  table.add_row({"passes skipped", std::to_string(m.passes_skipped)});
  table.add_row({"latency p50 ms", TextTable::num(m.latency_p50_ms, 2)});
  table.add_row({"latency p95 ms", TextTable::num(m.latency_p95_ms, 2)});
  table.add_row({"latency p99 ms", TextTable::num(m.latency_p99_ms, 2)});
  for (const PairMetrics& pair : m.pairs) {
    const std::string label = pair.frontend + "/" + pair.machine;
    table.add_row({label + " requests", std::to_string(pair.requests)});
    table.add_row({label + " functions", std::to_string(pair.functions)});
  }
  if (m.cache_attached) {
    table.add_row({"cache hits", std::to_string(m.cache.hits)});
    table.add_row({"cache misses", std::to_string(m.cache.misses)});
    table.add_row({"cache stores", std::to_string(m.cache.stores)});
    table.add_row(
        {"cache store failures", std::to_string(m.cache.store_failures)});
    table.add_row(
        {"cache lookup faults", std::to_string(m.cache.lookup_faults)});
    table.add_row({"stage hits", std::to_string(m.cache.stage_hits)});
    table.add_row({"stage misses", std::to_string(m.cache.stage_misses)});
    table.add_row({"stage stores", std::to_string(m.cache.stage_stores)});
  }
  return table;
}

std::string CompileServer::metrics_json() const {
  const ServerMetrics m = metrics();
  std::ostringstream json;
  json << "{\n"
       << "  \"uptime_seconds\": " << m.uptime_seconds << ",\n"
       << "  \"connections\": " << m.connections << ",\n"
       << "  \"requests\": " << m.requests << ",\n"
       << "  \"requests_ok\": " << m.requests_ok << ",\n"
       << "  \"requests_failed\": " << m.requests_failed << ",\n"
       << "  \"requests_busy\": " << m.requests_busy << ",\n"
       << "  \"malformed\": " << m.malformed << ",\n"
       << "  \"timeouts\": " << m.timeouts << ",\n"
       << "  \"version_mismatches\": " << m.version_mismatches << ",\n"
       << "  \"requests_per_sec\": " << m.requests_per_sec << ",\n"
       << "  \"functions\": " << m.functions << ",\n"
       << "  \"functions_per_sec\": " << m.functions_per_sec << ",\n"
       << "  \"functions_from_cache\": " << m.functions_from_cache << ",\n"
       << "  \"warm_hit_rate\": " << m.warm_hit_rate << ",\n"
       << "  \"prefix_hits\": " << m.prefix_hits << ",\n"
       << "  \"passes_skipped\": " << m.passes_skipped << ",\n"
       << "  \"batches\": " << m.batches << ",\n"
       << "  \"avg_batch_functions\": " << m.avg_batch_functions << ",\n"
       << "  \"max_batch_functions\": " << m.max_batch_functions << ",\n"
       << "  \"queue_depth\": " << m.queue_depth << ",\n"
       << "  \"queue_peak\": " << m.queue_peak << ",\n"
       << "  \"latency_p50_ms\": " << m.latency_p50_ms << ",\n"
       << "  \"latency_p95_ms\": " << m.latency_p95_ms << ",\n"
       << "  \"latency_p99_ms\": " << m.latency_p99_ms << ",\n";
  json << "  \"pairs\": [";
  for (std::size_t i = 0; i < m.pairs.size(); ++i) {
    const PairMetrics& pair = m.pairs[i];
    json << (i == 0 ? "" : ", ") << "{\"frontend\": \"" << pair.frontend
         << "\", \"machine\": \"" << pair.machine
         << "\", \"requests\": " << pair.requests
         << ", \"requests_ok\": " << pair.requests_ok
         << ", \"functions\": " << pair.functions
         << ", \"functions_from_cache\": " << pair.functions_from_cache
         << "}";
  }
  json << "],\n"
       << "  \"cache_attached\": " << (m.cache_attached ? "true" : "false");
  if (m.cache_attached) {
    json << ",\n  \"cache\": {\n"
         << "    \"hits\": " << m.cache.hits << ",\n"
         << "    \"misses\": " << m.cache.misses << ",\n"
         << "    \"stores\": " << m.cache.stores << ",\n"
         << "    \"bad_entries\": " << m.cache.bad_entries << ",\n"
         << "    \"evictions\": " << m.cache.evictions << ",\n"
         << "    \"store_failures\": " << m.cache.store_failures << ",\n"
         << "    \"lookup_faults\": " << m.cache.lookup_faults << ",\n"
         << "    \"stage_hits\": " << m.cache.stage_hits << ",\n"
         << "    \"stage_misses\": " << m.cache.stage_misses << ",\n"
         << "    \"stage_stores\": " << m.cache.stage_stores << ",\n"
         << "    \"graph_hits\": " << m.cache.graph_hits << ",\n"
         << "    \"graph_misses\": " << m.cache.graph_misses << ",\n"
         << "    \"graph_stores\": " << m.cache.graph_stores << "\n"
         << "  }";
  }
  json << "\n}\n";
  return json.str();
}

bool CompileServer::write_metrics_json(const std::string& path,
                                       std::string* error) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << metrics_json();
    if (!out.good()) {
      if (error != nullptr) {
        *error = "cannot write '" + tmp + "'";
      }
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) {
      *error = "cannot rename '" + tmp + "' to '" + path +
               "': " + std::strerror(errno);
    }
    return false;
  }
  return true;
}

}  // namespace tadfa::service
