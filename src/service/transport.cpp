#include "service/transport.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace tadfa::service {
namespace {

void set_errno_error(std::string* error, const std::string& what) {
  if (error != nullptr) {
    *error = what + ": " + std::strerror(errno);
  }
}

/// Applies the host's I/O deadline to an accepted connection.
void apply_io_timeout(int fd, double seconds) {
  timeval deadline{};
  if (seconds > 0) {
    deadline.tv_sec = static_cast<time_t>(seconds);
    deadline.tv_usec = static_cast<suseconds_t>(
        (seconds - static_cast<double>(deadline.tv_sec)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &deadline, sizeof(deadline));
  } else {
    // Bounded sends regardless: a client that stops reading must
    // eventually error the handler's write instead of blocking it (and
    // with it, a later stop()'s join) forever.
    deadline.tv_sec = 60;
  }
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &deadline, sizeof(deadline));
}

class UnixListener final : public Listener {
 public:
  explicit UnixListener(std::string path) : path_(std::move(path)) {}
  ~UnixListener() override { close_listener(); }

  bool open(std::string* error) override {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof(addr.sun_path)) {
      *error = "socket path too long: " + path_;
      return false;
    }
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

    // A stale socket file from a dead server is reclaimed; anything
    // else at that path is someone's data and refuses the bind.
    struct stat st{};
    if (::lstat(path_.c_str(), &st) == 0) {
      if (!S_ISSOCK(st.st_mode)) {
        *error = "'" + path_ + "' exists and is not a socket";
        return false;
      }
      ::unlink(path_.c_str());
    }

    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      set_errno_error(error, "socket failed");
      return false;
    }
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd_, 64) != 0) {
      set_errno_error(error, "cannot listen on '" + path_ + "'");
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    return true;
  }

  int fd() const override { return fd_; }
  std::string describe() const override { return "unix:" + path_; }

  void close_listener() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
      ::unlink(path_.c_str());
    }
  }

 private:
  std::string path_;
  int fd_ = -1;
};

class TcpListener final : public Listener {
 public:
  TcpListener(std::string host, std::uint16_t port)
      : host_(std::move(host)), port_(port) {}
  ~TcpListener() override { close_listener(); }

  bool open(std::string* error) override {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo* result = nullptr;
    const int rc = ::getaddrinfo(host_.empty() ? nullptr : host_.c_str(),
                                 std::to_string(port_).c_str(), &hints,
                                 &result);
    if (rc != 0) {
      if (error != nullptr) {
        *error = "cannot resolve '" + host_ + "': " + ::gai_strerror(rc);
      }
      return false;
    }
    std::string last_error = "no usable address for '" + host_ + "'";
    for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
      fd_ = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd_ < 0) {
        last_error = std::string("socket failed: ") + std::strerror(errno);
        continue;
      }
      const int on = 1;
      ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
      if (::bind(fd_, ai->ai_addr, ai->ai_addrlen) == 0 &&
          ::listen(fd_, 64) == 0) {
        break;
      }
      last_error = "cannot listen on " + describe() + ": " +
                   std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
    }
    ::freeaddrinfo(result);
    if (fd_ < 0) {
      if (error != nullptr) {
        *error = last_error;
      }
      return false;
    }
    // Port 0 asked the kernel for an ephemeral port; report the real one.
    sockaddr_storage bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      if (bound.ss_family == AF_INET) {
        port_ = ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        port_ = ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
      }
    }
    return true;
  }

  int fd() const override { return fd_; }
  std::uint16_t port() const override { return port_; }
  std::string describe() const override {
    return "tcp:" + host_ + ":" + std::to_string(port_);
  }

  void close_listener() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  std::string host_;
  std::uint16_t port_ = 0;
  int fd_ = -1;
};

}  // namespace

std::optional<TcpEndpoint> parse_host_port(const std::string& spec,
                                           std::string* error) {
  std::string host;
  std::string port_text;
  if (!spec.empty() && spec.front() == '[') {
    // "[v6::addr]:port"
    const std::size_t close = spec.find(']');
    if (close == std::string::npos || close + 1 >= spec.size() ||
        spec[close + 1] != ':') {
      if (error != nullptr) {
        *error = "expected [host]:port, got '" + spec + "'";
      }
      return std::nullopt;
    }
    host = spec.substr(1, close - 1);
    port_text = spec.substr(close + 2);
  } else {
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos) {
      if (error != nullptr) {
        *error = "expected host:port, got '" + spec + "'";
      }
      return std::nullopt;
    }
    host = spec.substr(0, colon);
    port_text = spec.substr(colon + 1);
  }
  if (host.empty() || port_text.empty() ||
      port_text.find_first_not_of("0123456789") != std::string::npos ||
      port_text.size() > 5) {
    if (error != nullptr) {
      *error = "expected host:port with a numeric port, got '" + spec + "'";
    }
    return std::nullopt;
  }
  const unsigned long port = std::stoul(port_text);
  if (port > 65535) {
    if (error != nullptr) {
      *error = "port out of range in '" + spec + "'";
    }
    return std::nullopt;
  }
  TcpEndpoint endpoint;
  endpoint.host = std::move(host);
  endpoint.port = static_cast<std::uint16_t>(port);
  return endpoint;
}

std::unique_ptr<Listener> make_unix_listener(std::string socket_path) {
  return std::make_unique<UnixListener>(std::move(socket_path));
}

std::unique_ptr<Listener> make_tcp_listener(std::string host,
                                            std::uint16_t port) {
  return std::make_unique<TcpListener>(std::move(host), port);
}

int connect_tcp(const std::string& host, std::uint16_t port,
                std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &result);
  if (rc != 0) {
    if (error != nullptr) {
      *error = "cannot resolve '" + host + "': " + ::gai_strerror(rc);
    }
    return -1;
  }
  int fd = -1;
  std::string last_error =
      "no usable address for '" + host + ":" + std::to_string(port) + "'";
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::string("socket failed: ") + std::strerror(errno);
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      break;
    }
    last_error = "cannot connect to '" + host + ":" + std::to_string(port) +
                 "': " + std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    if (error != nullptr) {
      *error = last_error;
    }
    return -1;
  }
  const int on = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
  return fd;
}

int connect_tcp_retry(const std::string& host, std::uint16_t port,
                      double timeout_seconds, std::string* error) {
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::duration<double>(timeout_seconds);
  auto backoff = std::chrono::milliseconds(10);
  constexpr auto kMaxBackoff = std::chrono::milliseconds(200);
  for (;;) {
    const int fd = connect_tcp(host, port, error);
    if (fd >= 0) {
      return fd;
    }
    const auto now = Clock::now();
    if (now >= deadline) {
      return -1;
    }
    auto sleep_for =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    if (backoff < sleep_for) {
      sleep_for = backoff;
    }
    std::this_thread::sleep_for(sleep_for);
    backoff = std::min(backoff * 2, kMaxBackoff);
  }
}

// --- ConnectionHost ----------------------------------------------------------

ConnectionHost::~ConnectionHost() { stop(); }

void ConnectionHost::add_listener(std::unique_ptr<Listener> listener) {
  listeners_.push_back(std::move(listener));
}

bool ConnectionHost::start(Handler handler, std::string* error) {
  if (started_) {
    if (error != nullptr) {
      *error = "connection host already started";
    }
    return false;
  }
  if (listeners_.empty()) {
    if (error != nullptr) {
      *error = "no listeners configured";
    }
    return false;
  }
  for (std::size_t i = 0; i < listeners_.size(); ++i) {
    if (!listeners_[i]->open(error)) {
      for (std::size_t j = 0; j < i; ++j) {
        listeners_[j]->close_listener();
      }
      return false;
    }
  }
  if (::pipe(wake_pipe_) != 0) {
    set_errno_error(error, "pipe failed");
    for (auto& listener : listeners_) {
      listener->close_listener();
    }
    return false;
  }
  handler_ = std::move(handler);
  stopping_.store(false);
  accept_thread_ = std::thread(&ConnectionHost::accept_loop, this);
  started_ = true;
  return true;
}

void ConnectionHost::stop() {
  if (!started_) {
    return;
  }
  // Phase 1: no new connections. Wake the accept loop and retire it.
  stopping_.store(true);
  const char wake = 'w';
  [[maybe_unused]] const ssize_t w = ::write(wake_pipe_[1], &wake, 1);
  accept_thread_.join();

  // Phase 2: half-close every live connection. Handlers blocked in read
  // see EOF and exit; a handler mid-request finishes and responds —
  // that is the drain.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) {
      ::shutdown(fd, SHUT_RD);
    }
  }
  for (std::thread& handler : handlers_) {
    handler.join();
  }
  handlers_.clear();
  finished_handlers_.clear();

  for (auto& listener : listeners_) {
    listener->close_listener();
  }
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  started_ = false;
}

std::uint64_t ConnectionHost::connections_accepted() const {
  std::lock_guard<std::mutex> lock(conn_mu_);
  return connections_;
}

std::uint16_t ConnectionHost::tcp_port() const {
  for (const auto& listener : listeners_) {
    if (listener->port() != 0) {
      return listener->port();
    }
  }
  return 0;
}

void ConnectionHost::accept_loop() {
  std::vector<pollfd> fds(listeners_.size() + 1);
  for (;;) {
    for (std::size_t i = 0; i < listeners_.size(); ++i) {
      fds[i] = {listeners_[i]->fd(), POLLIN, 0};
    }
    fds.back() = {wake_pipe_[0], POLLIN, 0};
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    if ((fds.back().revents & POLLIN) != 0 || stopping_.load()) {
      return;
    }
    for (std::size_t i = 0; i < listeners_.size(); ++i) {
      if ((fds[i].revents & POLLIN) == 0) {
        continue;
      }
      const int fd = ::accept(listeners_[i]->fd(), nullptr, nullptr);
      if (fd < 0) {
        continue;
      }
      apply_io_timeout(fd, io_timeout_seconds_);
      reap_finished_handlers();
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (stopping_.load()) {
        ::close(fd);
        return;
      }
      conn_fds_.push_back(fd);
      ++connections_;
      handlers_.emplace_back(&ConnectionHost::run_handler, this, fd);
    }
  }
}

void ConnectionHost::run_handler(int fd) {
  handler_(fd);
  // De-register before closing: once closed, the fd number can be
  // reused, and a concurrent stop() iterating conn_fds_ must never
  // shoot down an unrelated descriptor.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (std::size_t i = 0; i < conn_fds_.size(); ++i) {
      if (conn_fds_[i] == fd) {
        conn_fds_.erase(conn_fds_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    finished_handlers_.push_back(std::this_thread::get_id());
  }
  ::close(fd);
}

void ConnectionHost::reap_finished_handlers() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (const std::thread::id id : finished_handlers_) {
    for (std::size_t i = 0; i < handlers_.size(); ++i) {
      if (handlers_[i].get_id() == id) {
        // The marked thread is at most a few instructions from
        // returning, so this join is effectively immediate.
        handlers_[i].join();
        handlers_.erase(handlers_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }
  finished_handlers_.clear();
}

}  // namespace tadfa::service
