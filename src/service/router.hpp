// Router: a sharding front-end for a fleet of compile servers.
//
// `tadfa route` binds the same framed protocol (Unix and/or TCP) as
// `tadfa serve`, but compiles nothing itself: each request's functions
// are resolved locally (kernel names and module text, exactly as a
// server would), fingerprinted (ir::fingerprint), and forwarded to the
// shard a ShardPolicy picks for each fingerprint. A batched request
// whose functions map to different shards is split into per-shard
// sub-requests that compile concurrently on different server processes,
// and the sub-responses are merged back in the original request order —
// from the client's seat, the router is indistinguishable from one big
// server, byte for byte.
//
// Fingerprint routing is the point: a given function always lands on
// the same shard, so each shard's persistent ResultCache warms a
// disjoint slice of the workload and shards never contend for the same
// cache entries. The policy is deliberately a narrow interface (one
// pure function from fingerprint to shard index) so smarter placement —
// weighted shards, consistent hashing for elastic fleets — can be
// swapped in without touching the forwarding machinery.
//
// Failure semantics are explicit and never block the client:
//  - an unreachable shard (connect or I/O failure after one reconnect
//    retry) is routed around deterministically: the slice moves to the
//    next shard in index order. Results stay byte-identical because
//    compiles are pure; only cache locality degrades.
//  - a shard answering BUSY (its bounded queue is full) makes the whole
//    client response BUSY. The router does not re-aim the slice at
//    another shard: that would convert one shard's overload into fleet
//    overload. The client retries with backoff.
//  - if no shard is reachable at all, the client gets BUSY, not a hang.
// Forwarding retries after a connection drop are safe because compiles
// are pure and cached: a re-sent request is idempotent.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ir/function.hpp"
#include "service/naming.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"
#include "support/table.hpp"

namespace tadfa::service {

/// Maps a function fingerprint to a shard index in [0, num_shards).
/// Must be pure and deterministic: the same fingerprint must always
/// land on the same shard or per-shard cache locality evaporates.
class ShardPolicy {
 public:
  virtual ~ShardPolicy() = default;
  virtual std::size_t shard_for(std::uint64_t fingerprint,
                                std::size_t num_shards) const = 0;
  virtual std::string_view name() const = 0;
};

/// Default policy: splitmix64-mix the fingerprint, then reduce modulo
/// the shard count. The mix step matters: ir::fingerprint values are
/// already hashes, but mixing guards the low bits against any
/// structure, so slices stay balanced for small shard counts.
class FingerprintShardPolicy final : public ShardPolicy {
 public:
  std::size_t shard_for(std::uint64_t fingerprint,
                        std::size_t num_shards) const override;
  std::string_view name() const override { return "fingerprint"; }
};

/// Address of one backend shard: "unix:<path>" or "tcp:<host>:<port>"
/// (a bare "<host>:<port>" is accepted as TCP, a bare path containing
/// '/' as Unix).
struct ShardAddress {
  bool tcp = false;
  std::string unix_path;
  TcpEndpoint endpoint;
  std::string describe() const;
};

/// nullopt (with `error`) on an unparsable address.
std::optional<ShardAddress> parse_shard_address(const std::string& text,
                                                std::string* error);

struct RouterConfig {
  /// Front listeners, same semantics as ServerConfig: at least one of
  /// socket_path / tcp_host is required.
  std::string socket_path;
  std::string tcp_host;
  std::uint16_t tcp_port = 0;
  /// Backend shard addresses in policy index order (at least one).
  std::vector<ShardAddress> shards;
  /// Per-connection read/write deadline for *client* connections
  /// (semantics as ServerConfig::io_timeout_seconds).
  double io_timeout_seconds = 30.0;
  /// Budget for (re)connecting to a shard before the router gives up
  /// on it for the request at hand and routes around.
  double connect_timeout_seconds = 5.0;
  /// Router-side admission control. Each shard has one pooled
  /// connection; at most this many requests may wait their turn on it
  /// before the router sheds further arrivals with BUSY (0 =
  /// unbounded). Without the bound, a saturated shard would make
  /// clients queue invisibly inside the router instead of getting the
  /// structured back-off signal.
  std::size_t max_shard_waiters = 8;
};

/// Per-shard forwarding counters.
struct ShardMetrics {
  std::string address;
  /// Sub-requests forwarded (including retries after a reconnect).
  std::uint64_t forwarded = 0;
  std::uint64_t ok = 0;
  std::uint64_t busy = 0;
  std::uint64_t errors = 0;
  /// Connections (re)established to this shard.
  std::uint64_t connects = 0;
  /// Sub-requests that arrived here because their home shard was
  /// unreachable.
  std::uint64_t routed_around_in = 0;
  /// Sub-requests shed by the router itself because too many were
  /// already waiting on this shard's pooled connection.
  std::uint64_t shed = 0;
  /// Functions forwarded to this shard.
  std::uint64_t functions = 0;
};

struct RouterMetrics {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t requests_ok = 0;
  std::uint64_t requests_failed = 0;
  /// Client responses shed as BUSY (a shard was saturated, or no shard
  /// was reachable).
  std::uint64_t requests_busy = 0;
  std::uint64_t malformed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t version_mismatches = 0;
  std::uint64_t functions = 0;
  /// Client requests that were split across more than one shard.
  std::uint64_t split_requests = 0;
  double uptime_seconds = 0;
  double requests_per_sec = 0;
  /// Client-side latency (frame decoded -> response ready).
  double latency_p50_ms = 0;
  double latency_p95_ms = 0;
  double latency_p99_ms = 0;
  std::vector<ShardMetrics> shards;
  /// Per-(frontend, machine) breakdown of resolved requests, sorted by
  /// (frontend, machine) — an empty request machine is labeled
  /// "default", matching what a default-context shard resolves it to.
  std::vector<PairMetrics> pairs;
};

class Router {
 public:
  /// `policy` may be null: FingerprintShardPolicy is used.
  Router(RouterConfig config, std::unique_ptr<ShardPolicy> policy = nullptr);
  /// Calls shutdown().
  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds the front listeners and starts accepting. Shards are dialed
  /// lazily, per request — a shard that is down at router start is not
  /// an error, just unreachable until it comes up.
  bool start();
  void shutdown();

  const std::string& error() const { return error_; }
  const RouterConfig& config() const { return config_; }
  bool running() const { return started_; }
  /// The bound front TCP port once start() succeeded (0 without one).
  std::uint16_t tcp_port() const { return host_.tcp_port(); }

  RouterMetrics metrics() const;
  TextTable metrics_table(const std::string& title = "compile router") const;
  /// The metrics snapshot as one machine-readable JSON object, with a
  /// per-shard breakdown.
  std::string metrics_json() const;
  /// Writes metrics_json() to `path` atomically (tmp file + rename).
  bool write_metrics_json(const std::string& path, std::string* error) const;

 private:
  /// One pooled connection to a backend shard. Handler threads
  /// serialize on `mu` per shard; different shards proceed in
  /// parallel. `waiters` (incremented before taking `mu`) is the
  /// router's own admission signal: past max_shard_waiters, arrivals
  /// are shed with BUSY instead of queuing on the mutex.
  struct ShardConnection {
    std::mutex mu;
    int fd = -1;
    std::atomic<int> waiters{0};
    std::atomic<std::uint64_t> shed{0};
    ShardMetrics stats;
  };

  /// One function of a client request, tagged with where it came from
  /// (kernel list vs module text) and where it is going.
  struct RoutedFunction {
    /// Position in the client's request order.
    std::size_t index = 0;
    /// Kernel name when the function came from the request's kernel
    /// list (forwarded by name); empty for module-text functions
    /// (forwarded re-printed).
    std::string kernel;
    ir::Function func{""};
    std::uint64_t fingerprint = 0;
    std::size_t shard = 0;
  };

  void handle_connection(int fd);
  /// The whole forwarding pipeline for one decoded request: resolve,
  /// fingerprint, split, forward, merge. Never blocks indefinitely.
  /// `frontend`/`machine` receive the resolved pair labels (untouched
  /// when resolution fails).
  CompileResponse route_request(CompileRequest request, std::string* frontend,
                                std::string* machine);
  /// Resolves request functions exactly as a server would; nullopt on
  /// success with `out` and the pair labels filled, otherwise a ready
  /// error response.
  std::optional<CompileResponse> resolve(const CompileRequest& request,
                                         std::vector<RoutedFunction>* out,
                                         std::string* frontend,
                                         std::string* machine);
  /// Sends `sub` to shard `shard` over its pooled connection (dialing
  /// or re-dialing as needed, one retry after a dropped connection).
  /// nullopt when the shard is unreachable.
  std::optional<CompileResponse> forward(std::size_t shard,
                                         const CompileRequest& sub,
                                         std::size_t function_count,
                                         bool routed_around);

  void record_request(const CompileResponse& response, double latency_ms,
                      const std::string& frontend, const std::string& machine);
  void record_malformed();
  void record_timeout();
  void record_version_mismatch();

  RouterConfig config_;
  std::unique_ptr<ShardPolicy> policy_;
  std::string error_;

  ConnectionHost host_;
  bool started_ = false;

  std::vector<std::unique_ptr<ShardConnection>> shards_;

  mutable std::mutex metrics_mu_;
  std::uint64_t requests_ = 0;
  std::uint64_t requests_ok_ = 0;
  std::uint64_t requests_failed_ = 0;
  std::uint64_t requests_busy_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t version_mismatches_ = 0;
  std::uint64_t functions_ = 0;
  std::uint64_t split_requests_ = 0;
  /// Per-(frontend, machine) counters for resolved requests.
  std::map<std::pair<std::string, std::string>, PairMetrics> pair_metrics_;
  static constexpr std::size_t kLatencyWindow = 4096;
  std::vector<double> latencies_ms_;
  std::size_t latency_next_ = 0;
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace tadfa::service
