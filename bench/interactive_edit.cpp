// INTERACTIVE EDIT — dependency-edge invalidation on resubmit.
//
// Models the interactive recompile loop: a mixed module (with module-level
// `ref` dependency edges) is compiled cold through an edit-aware
// pipeline::CompilationDriver, resubmitted unchanged (everything warm),
// then resubmitted with exactly ONE function edited (an immediate bumped —
// a fingerprint-changing, verifier-clean mutation). The gates:
//
//   - the edited resubmit recompiles exactly the edited function plus its
//     true transitive dependents (everything else restores warm),
//   - the warm fraction of the edited resubmit is at least 90%,
//   - the edited resubmit's output is byte-identical to a from-scratch
//     cold compile of the edited module, at --jobs 1 AND at --jobs N
//     (two pristine copies of the warm cache keep both runs honest).
//
// Exit 1 on any gate failure — the CI bench-smoke job runs this binary.
//
// With --json=PATH the headline numbers are written as the repo's
// benchmark artifact (higher is better):
//
//   {"bench": ..., "config": {...}, "functions_per_sec": <edited resubmit>,
//    "warm_fraction": <edited resubmit>, "git_sha": ...}
//
//   bench_interactive_edit [--functions=N] [--jobs=N] [--cache-dir=DIR]
//                          [--json=PATH] [--git-sha=SHA] [--csv]
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ir/printer.hpp"
#include "pipeline/dependency_graph.hpp"
#include "pipeline/driver.hpp"
#include "pipeline/result_cache.hpp"
#include "support/string_utils.hpp"
#include "workload/modules.hpp"

using namespace tadfa;

namespace {

// The warm/cold bench's Sec. 4 flavor: the thermal DFA dominates, so a
// spurious invalidation costs real time and a warm restore saves it.
constexpr const char* kSpec =
    "cse,dce,alloc=linear:first_free,thermal-dfa,"
    "alloc=coloring:coolest_first,schedule";

constexpr std::uint64_t kSeed = 7;

struct Snapshot {
  std::vector<std::string> printed;
  std::vector<std::uint64_t> fingerprints;
  std::vector<std::uint32_t> spills;
};

Snapshot snapshot(const pipeline::ModulePipelineResult& result) {
  Snapshot s;
  for (const auto& f : result.functions) {
    s.printed.push_back(ir::to_string(f.run.state.func));
    s.fingerprints.push_back(ir::fingerprint(f.run.state.func));
    s.spills.push_back(f.run.state.spilled_regs);
  }
  return s;
}

bool identical(const Snapshot& a, const Snapshot& b) {
  return a.printed == b.printed && a.fingerprints == b.fingerprints &&
         a.spills == b.spills;
}

/// Bumps the first immediate operand of `func` by one: the smallest
/// verifier-clean mutation that changes ir::fingerprint.
bool bump_first_immediate(ir::Function& func) {
  for (ir::BasicBlock& block : func.blocks()) {
    for (ir::Instruction& inst : block.instructions()) {
      for (ir::Operand& op : inst.operands()) {
        if (op.is_imm()) {
          op = ir::Operand::imm(op.imm() + 1);
          return true;
        }
      }
    }
  }
  return false;
}

std::size_t recompiled_count(const pipeline::ModulePipelineResult& result) {
  std::size_t n = 0;
  for (const auto& f : result.functions) {
    n += f.from_cache ? 0 : 1;
  }
  return n;
}

using bench::json_escape;

}  // namespace

int main(int argc, char** argv) {
  std::size_t functions = 40;
  unsigned jobs = 8;
  std::string cache_dir;
  std::string json_path;
  std::string git_sha;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long long n = 0;
    if (starts_with(arg, "--functions=") && parse_int(arg.substr(12), n) &&
        n > 0) {
      functions = static_cast<std::size_t>(n);
    } else if (starts_with(arg, "--jobs=") && parse_int(arg.substr(7), n) &&
               n >= 0) {
      jobs = static_cast<unsigned>(n);
    } else if (starts_with(arg, "--cache-dir=")) {
      cache_dir = arg.substr(12);
    } else if (starts_with(arg, "--json=")) {
      json_path = arg.substr(7);
    } else if (starts_with(arg, "--git-sha=")) {
      git_sha = arg.substr(10);
    } else if (arg == "--csv") {
      csv = true;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--functions=N] [--jobs=N] [--cache-dir=DIR]"
                   " [--json=PATH] [--git-sha=SHA] [--csv]\n";
      return 2;
    }
  }
  if (git_sha.empty()) {
    const char* env = std::getenv("GITHUB_SHA");
    git_sha = env != nullptr ? env : "unknown";
  }
  namespace fs = std::filesystem;
  const fs::path root =
      cache_dir.empty() ? fs::temp_directory_path() : fs::path(cache_dir);
  // The bench owns (and wipes) namespaced subdirectories so the cold run
  // is actually cold — never the caller's directory itself.
  const fs::path warm_dir = root / "tadfa-interactive-cache";
  const fs::path copy_dir = root / "tadfa-interactive-cache-copy";
  std::error_code ec;
  fs::remove_all(warm_dir, ec);
  fs::remove_all(copy_dir, ec);

  workload::ModuleConfig mcfg;
  mcfg.functions = functions;
  mcfg.seed = kSeed;
  const ir::Module module = workload::make_mixed_module(mcfg);

  // The edit target: the function with at least one transitive dependent
  // and the FEWEST of them (ties by name) — a realistic local edit whose
  // blast radius the graph should bound tightly.
  const auto graph = pipeline::DependencyGraph::build(module);
  std::string edit_name;
  std::vector<std::string> dependents;
  for (const pipeline::DependencyNode& node : graph.nodes()) {
    auto deps = graph.dependents_of(node.name);
    if (deps.empty()) {
      continue;
    }
    if (edit_name.empty() || deps.size() < dependents.size() ||
        (deps.size() == dependents.size() && node.name < edit_name)) {
      edit_name = node.name;
      dependents = std::move(deps);
    }
  }
  if (edit_name.empty()) {
    std::cerr << "module has no dependency edges to exercise "
                 "(ref_every disabled?)\n";
    return 1;
  }

  ir::Module edited = module;
  ir::Function* target = edited.find(edit_name);
  if (target == nullptr || !bump_first_immediate(*target)) {
    std::cerr << "cannot edit '" << edit_name << "': no immediate operand\n";
    return 1;
  }

  bench::Rig rig;
  pipeline::PipelineContext ctx;
  ctx.floorplan = &rig.fp;
  ctx.grid = &rig.grid;
  ctx.power = &rig.power;

  // Reference output: the edited module compiled from scratch, uncached.
  pipeline::CompilationDriver reference(ctx);
  reference.set_jobs(1);
  const auto fresh = reference.compile(edited, kSpec);
  if (!fresh.ok) {
    std::cerr << "reference compile failed: " << fresh.error << "\n";
    return 1;
  }
  const Snapshot cold_snap = snapshot(fresh);

  pipeline::CompilationDriver driver(ctx);
  driver.set_jobs(jobs);
  pipeline::ResultCache cache(warm_dir.string());
  if (!cache.ok()) {
    std::cerr << cache.error() << "\n";
    return 1;
  }
  driver.set_result_cache(&cache);
  driver.set_edit_aware(true);

  // Phase 1+2: cold compile populates cache + graph; unchanged resubmit
  // must be fully warm.
  const auto cold = driver.compile(module, kSpec);
  if (!cold.ok) {
    std::cerr << "cold compile failed: " << cold.error << "\n";
    return 1;
  }
  const auto warm = driver.compile(module, kSpec);
  if (!warm.ok) {
    std::cerr << "warm resubmit failed: " << warm.error << "\n";
    return 1;
  }
  cache.flush();
  // A pristine copy of the warm cache lets the jobs=N edited resubmit run
  // against the same starting state as the jobs=1 one.
  fs::copy(warm_dir, copy_dir, fs::copy_options::recursive, ec);
  if (ec) {
    std::cerr << "cannot copy the warm cache: " << ec.message() << "\n";
    return 1;
  }

  struct Phase {
    const char* name;
    unsigned jobs;
    double seconds = 0;
    std::size_t recompiled = 0;
    std::size_t by_edge = 0;
    double warm_fraction = 0;
    bool identical = false;
  };
  Phase phases[] = {{"edited jobs=1", 1}, {"edited jobs=N", jobs}};
  for (std::size_t p = 0; p < 2; ++p) {
    pipeline::ResultCache phase_cache(
        (p == 0 ? warm_dir : copy_dir).string());
    if (!phase_cache.ok()) {
      std::cerr << phase_cache.error() << "\n";
      return 1;
    }
    pipeline::CompilationDriver editor(ctx);
    editor.set_jobs(phases[p].jobs);
    editor.set_result_cache(&phase_cache);
    editor.set_edit_aware(true);
    const auto result = editor.compile(edited, kSpec);
    if (!result.ok) {
      std::cerr << phases[p].name << " failed: " << result.error << "\n";
      return 1;
    }
    phases[p].seconds = result.total_seconds;
    phases[p].recompiled = recompiled_count(result);
    phases[p].by_edge = result.invalidated_by_edge();
    phases[p].warm_fraction = result.cache_hit_rate();
    phases[p].identical = identical(snapshot(result), cold_snap);
  }

  TextTable table("interactive edit — " + std::to_string(functions) +
                  " functions, edited '" + edit_name + "' (" +
                  std::to_string(dependents.size()) + " dependents)");
  table.set_header({"phase", "jobs", "wall s", "recompiled", "by edge",
                    "warm", "identical"});
  table.add_row({"cold", std::to_string(jobs),
                 TextTable::num(cold.total_seconds, 3),
                 std::to_string(recompiled_count(cold)), "0", "0.0%", "-"});
  table.add_row({"warm resubmit", std::to_string(jobs),
                 TextTable::num(warm.total_seconds, 3),
                 std::to_string(recompiled_count(warm)), "0",
                 TextTable::num(warm.cache_hit_rate() * 100.0, 1) + "%",
                 "-"});
  for (const Phase& phase : phases) {
    table.add_row({phase.name, std::to_string(phase.jobs),
                   TextTable::num(phase.seconds, 3),
                   std::to_string(phase.recompiled),
                   std::to_string(phase.by_edge),
                   TextTable::num(phase.warm_fraction * 100.0, 1) + "%",
                   phase.identical ? "yes" : "NO"});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  const std::size_t expected = 1 + dependents.size();
  bool failed = false;
  if (recompiled_count(warm) != 0) {
    std::cerr << "WARM RESUBMIT RECOMPILED: " << recompiled_count(warm)
              << " functions recompiled without any edit\n";
    failed = true;
  }
  for (const Phase& phase : phases) {
    if (phase.recompiled != expected) {
      std::cerr << "OVER/UNDER-INVALIDATION (" << phase.name << "): "
                << phase.recompiled << " functions recompiled, expected "
                << expected << " (1 edited + " << dependents.size()
                << " dependents)\n";
      failed = true;
    }
    if (phase.by_edge != dependents.size()) {
      std::cerr << "EDGE MISCOUNT (" << phase.name << "): " << phase.by_edge
                << " invalidated by edge, expected " << dependents.size()
                << "\n";
      failed = true;
    }
    if (phase.warm_fraction < 0.9) {
      std::cerr << "WARM FRACTION (" << phase.name << "): "
                << TextTable::num(phase.warm_fraction * 100.0, 1)
                << "% is below the 90% floor\n";
      failed = true;
    }
    if (!phase.identical) {
      std::cerr << "DETERMINISM VIOLATED (" << phase.name
                << "): edited resubmit differs from a from-scratch compile "
                   "of the edited module\n";
      failed = true;
    }
  }

  const Phase& headline = phases[1];
  std::cout << "edited resubmit recompiled " << headline.recompiled << "/"
            << functions << " functions ("
            << TextTable::num(headline.warm_fraction * 100.0, 1)
            << "% warm)\n";
  if (!json_path.empty()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"interactive_edit\",\n"
         << "  \"config\": {\n"
         << "    \"functions\": " << functions << ",\n"
         << "    \"jobs\": " << headline.jobs << ",\n"
         << "    \"seed\": " << kSeed << ",\n"
         << "    \"spec\": \"" << json_escape(kSpec) << "\",\n"
         << "    \"edited\": \"" << json_escape(edit_name) << "\",\n"
         << "    \"dependents\": " << dependents.size() << ",\n"
         << "    \"recompiled\": " << headline.recompiled << "\n"
         << "  },\n"
         << "  \"functions_per_sec\": "
         << bench::per_sec(functions, headline.seconds) << ",\n"
         << "  \"warm_fraction\": " << headline.warm_fraction << ",\n"
         << "  \"git_sha\": \"" << json_escape(git_sha) << "\"\n"
         << "}\n";
    std::ofstream out(json_path, std::ios::trunc);
    out << json.str();
    if (!out.good()) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  return failed ? 1 : 0;
}
