// ROUTER SATURATION — the sharded topology driven past capacity.
//
// Spins two in-process compile servers (deliberately starved: jobs=1,
// a short bounded queue) behind a service::Router, then overwhelms the
// router with client threads that fire requests as fast as responses
// come back, no client-side backoff. This is the admission-control
// acceptance harness; it gates, and exits 1 on any violation:
//
//   * every request gets a structured response — zero dropped
//     connections, zero malformed responses, zero hangs;
//   * overload is explicit: at saturation a nonzero fraction of
//     requests is answered BUSY (shed by a shard's bounded queue or by
//     the router's own waiter bound), never silently queued;
//   * admitted requests stay bounded: p95/p99 latency of OK responses
//     must not exceed a limit derived from the direct compile cost of
//     one request (--p99-limit overrides);
//   * the topology is transparent: every function in every OK response
//     is byte-identical to a direct single-process
//     CompilationDriver::compile of the same module.
//
// With --json=PATH the headline number is written as the repo's router
// benchmark artifact (BENCH_router.json in CI):
//
//   {"bench": "router_saturation", "config": {... busy_fraction,
//    p95_ms, p99_ms ...}, "admitted_per_sec": <OK responses/sec>,
//    "git_sha": ...}
//
// Only admitted_per_sec sits at the top level: tools/bench_history.py
// treats top-level numerics as higher-is-better headlines, and latency
// or BUSY counts must not be "regressions" when they drop.
//
//   bench_router_saturation [--functions=N] [--clients=N]
//                           [--per-request=N] [--requests=N]
//                           [--max-queue=N] [--max-waiters=N]
//                           [--p99-limit=S] [--json=PATH]
//                           [--git-sha=SHA] [--csv]
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "ir/printer.hpp"
#include "pipeline/driver.hpp"
#include "service/protocol.hpp"
#include "service/router.hpp"
#include "service/server.hpp"
#include "support/statistics.hpp"
#include "support/string_utils.hpp"
#include "workload/modules.hpp"

using namespace tadfa;

namespace {

constexpr const char* kSpec =
    "cse,dce,alloc=linear:first_free,thermal-dfa,"
    "alloc=coloring:coolest_first,schedule";

constexpr std::uint64_t kSeed = 19;

using bench::json_escape;
using bench::per_sec;

struct ClientTally {
  std::size_t ok = 0;
  std::size_t busy = 0;
  std::size_t failed = 0;
  /// Requests with no structured response at all (I/O error, hang cut
  /// short, undecodable frame). Must end at zero.
  std::size_t dropped = 0;
  std::vector<double> ok_latencies_ms;
  std::string first_error;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t functions = 32;
  std::size_t clients = 8;
  std::size_t per_request = 2;
  std::size_t requests_per_client = 24;
  std::size_t max_queue = 2;
  std::size_t max_waiters = 2;
  double p99_limit_s = 0;  // 0 = derive from the direct compile cost
  std::string json_path;
  std::string git_sha;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long long n = 0;
    if (starts_with(arg, "--functions=") && parse_int(arg.substr(12), n) &&
        n > 0) {
      functions = static_cast<std::size_t>(n);
    } else if (starts_with(arg, "--clients=") && parse_int(arg.substr(10), n) &&
               n > 0) {
      clients = static_cast<std::size_t>(n);
    } else if (starts_with(arg, "--per-request=") &&
               parse_int(arg.substr(14), n) && n > 0) {
      per_request = static_cast<std::size_t>(n);
    } else if (starts_with(arg, "--requests=") &&
               parse_int(arg.substr(11), n) && n > 0) {
      requests_per_client = static_cast<std::size_t>(n);
    } else if (starts_with(arg, "--max-queue=") &&
               parse_int(arg.substr(12), n) && n > 0) {
      max_queue = static_cast<std::size_t>(n);
    } else if (starts_with(arg, "--max-waiters=") &&
               parse_int(arg.substr(14), n) && n > 0) {
      max_waiters = static_cast<std::size_t>(n);
    } else if (starts_with(arg, "--p99-limit=") &&
               parse_double(arg.substr(12), p99_limit_s) && p99_limit_s >= 0) {
      // parsed in the condition
    } else if (starts_with(arg, "--json=")) {
      json_path = arg.substr(7);
    } else if (starts_with(arg, "--git-sha=")) {
      git_sha = arg.substr(10);
    } else if (arg == "--csv") {
      csv = true;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--functions=N] [--clients=N] [--per-request=N]"
                   " [--requests=N] [--max-queue=N] [--max-waiters=N]"
                   " [--p99-limit=S] [--json=PATH] [--git-sha=SHA] [--csv]\n";
      return 2;
    }
  }
  if (git_sha.empty()) {
    const char* env = std::getenv("GITHUB_SHA");
    git_sha = env != nullptr ? env : "unknown";
  }

  namespace fs = std::filesystem;
  const std::string stem = "tadfa-router-bench-" + std::to_string(::getpid());
  auto sock = [&](const std::string& name) {
    return (fs::temp_directory_path() / (stem + "-" + name + ".sock"))
        .string();
  };

  workload::ModuleConfig mcfg;
  mcfg.functions = functions;
  mcfg.seed = kSeed;
  const ir::Module module = workload::make_mixed_module(mcfg);

  bench::Rig rig;
  pipeline::PipelineContext ctx;
  ctx.floorplan = &rig.fp;
  ctx.grid = &rig.grid;
  ctx.power = &rig.power;

  // The determinism reference AND the latency yardstick: one direct
  // single-threaded compile of the whole module.
  pipeline::CompilationDriver reference_driver(ctx);
  reference_driver.set_jobs(1);
  const auto ref_start = std::chrono::steady_clock::now();
  const auto reference = reference_driver.compile(module, kSpec);
  const double ref_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    ref_start)
          .count();
  if (!reference.ok) {
    std::cerr << "reference compile failed: " << reference.error << "\n";
    return 1;
  }
  // An admitted request compiles per_request functions; it may wait
  // behind a full queue of batches on a jobs=1 shard. 25x that, floored
  // at 2 s, absorbs CI noise while still catching an unbounded queue.
  if (p99_limit_s == 0) {
    const double per_request_s =
        ref_seconds * static_cast<double>(per_request) /
        static_cast<double>(module.size());
    p99_limit_s =
        std::max(2.0, 25.0 * per_request_s *
                          static_cast<double>(max_queue + max_waiters + 1));
  }

  // Two deliberately starved shards: single worker, short queue.
  std::vector<std::unique_ptr<service::CompileServer>> shards;
  service::RouterConfig rcfg;
  rcfg.socket_path = sock("router");
  rcfg.max_shard_waiters = max_waiters;
  for (int i = 0; i < 2; ++i) {
    service::ServerConfig scfg;
    scfg.socket_path = sock("shard" + std::to_string(i));
    scfg.jobs = 1;
    scfg.max_queue = max_queue;
    scfg.default_spec = kSpec;
    shards.push_back(std::make_unique<service::CompileServer>(ctx, scfg));
    if (!shards.back()->start()) {
      std::cerr << "shard start failed: " << shards.back()->error() << "\n";
      return 1;
    }
    std::string perr;
    rcfg.shards.push_back(
        *service::parse_shard_address("unix:" + scfg.socket_path, &perr));
  }
  service::Router router(rcfg);
  if (!router.start()) {
    std::cerr << "router start failed: " << router.error() << "\n";
    return 1;
  }

  // Saturation: every client fires requests back to back — no backoff
  // on BUSY (the point is to keep the fleet pinned) — over one
  // connection per request, round-robining its slice of the module.
  std::vector<ClientTally> tallies(clients);
  std::vector<std::thread> pool;
  pool.reserve(clients);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      ClientTally& mine = tallies[c];
      for (std::size_t r = 0; r < requests_per_client; ++r) {
        service::CompileRequest request;
        request.spec = kSpec;
        std::vector<std::size_t> indices;
        for (std::size_t k = 0; k < per_request; ++k) {
          const std::size_t idx =
              (c + (r * per_request + k) * clients) % module.size();
          if (std::find(indices.begin(), indices.end(), idx) !=
              indices.end()) {
            break;  // tiny module wrapped around: no duplicate names
          }
          indices.push_back(idx);
          request.module_text +=
              ir::to_string(module.functions()[idx]) + "\n";
        }
        std::string error;
        const int fd =
            service::connect_unix_retry(rcfg.socket_path, 5.0, &error);
        if (fd < 0) {
          ++mine.dropped;
          if (mine.first_error.empty()) {
            mine.first_error = error;
          }
          continue;
        }
        const auto sent = std::chrono::steady_clock::now();
        std::optional<service::CompileResponse> response;
        if (service::write_request(fd, request, &error)) {
          response = service::read_response(fd, &error);
        }
        ::close(fd);
        if (!response.has_value()) {
          ++mine.dropped;
          if (mine.first_error.empty()) {
            mine.first_error = error;
          }
          continue;
        }
        if (response->ok) {
          ++mine.ok;
          mine.ok_latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - sent)
                  .count());
          for (std::size_t k = 0; k < indices.size(); ++k) {
            const auto& ref = reference.functions[indices[k]];
            if (response->functions.size() <= k ||
                response->functions[k].printed !=
                    ir::to_string(ref.run.state.func)) {
              ++mine.failed;
              if (mine.first_error.empty()) {
                mine.first_error = "function '" + ref.name +
                                   "' served differently than compiled "
                                   "directly";
              }
            }
          }
        } else if (response->code == service::ResponseCode::kBusy) {
          ++mine.busy;
        } else {
          ++mine.failed;
          if (mine.first_error.empty()) {
            mine.first_error = response->error;
          }
        }
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  ClientTally total;
  std::vector<double> latencies;
  for (const ClientTally& mine : tallies) {
    total.ok += mine.ok;
    total.busy += mine.busy;
    total.failed += mine.failed;
    total.dropped += mine.dropped;
    latencies.insert(latencies.end(), mine.ok_latencies_ms.begin(),
                     mine.ok_latencies_ms.end());
    if (total.first_error.empty()) {
      total.first_error = mine.first_error;
    }
  }
  const std::size_t issued = clients * requests_per_client;
  const double busy_fraction =
      issued == 0 ? 0.0
                  : static_cast<double>(total.busy) /
                        static_cast<double>(issued);
  const double p50 =
      latencies.empty() ? 0.0 : stats::percentile(latencies, 50.0);
  const double p95 =
      latencies.empty() ? 0.0 : stats::percentile(latencies, 95.0);
  const double p99 =
      latencies.empty() ? 0.0 : stats::percentile(latencies, 99.0);

  router.shutdown();
  for (auto& shard : shards) {
    shard->shutdown();
  }

  TextTable table("router saturation — " + std::to_string(clients) +
                  " clients x " + std::to_string(requests_per_client) +
                  " requests, 2 starved shards");
  table.set_header({"metric", "value"});
  table.add_row({"wall s", bench::fmt(wall, 2)});
  table.add_row({"issued", std::to_string(issued)});
  table.add_row({"admitted (ok)", std::to_string(total.ok)});
  table.add_row({"busy", std::to_string(total.busy)});
  table.add_row({"failed", std::to_string(total.failed)});
  table.add_row({"dropped", std::to_string(total.dropped)});
  table.add_row({"busy fraction", bench::fmt(busy_fraction * 100.0, 1) + "%"});
  table.add_row({"admitted/sec", bench::fmt(per_sec(total.ok, wall), 1)});
  table.add_row({"ok p50 ms", bench::fmt(p50, 1)});
  table.add_row({"ok p95 ms", bench::fmt(p95, 1)});
  table.add_row({"ok p99 ms", bench::fmt(p99, 1)});
  table.add_row({"p99 limit ms", bench::fmt(p99_limit_s * 1e3, 1)});
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  if (!json_path.empty()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"router_saturation\",\n"
         << "  \"config\": {\n"
         << "    \"functions\": " << functions << ",\n"
         << "    \"clients\": " << clients << ",\n"
         << "    \"per_request\": " << per_request << ",\n"
         << "    \"requests_per_client\": " << requests_per_client << ",\n"
         << "    \"max_queue\": " << max_queue << ",\n"
         << "    \"max_waiters\": " << max_waiters << ",\n"
         << "    \"seed\": " << kSeed << ",\n"
         << "    \"spec\": \"" << json_escape(kSpec) << "\",\n"
         << "    \"busy_fraction\": " << busy_fraction << ",\n"
         << "    \"ok_p50_ms\": " << p50 << ",\n"
         << "    \"ok_p95_ms\": " << p95 << ",\n"
         << "    \"ok_p99_ms\": " << p99 << ",\n"
         << "    \"p99_limit_ms\": " << p99_limit_s * 1e3 << ",\n"
         << "    \"dropped\": " << total.dropped << ",\n"
         << "    \"failed\": " << total.failed << "\n"
         << "  },\n"
         << "  \"admitted_per_sec\": " << per_sec(total.ok, wall) << ",\n"
         << "  \"git_sha\": \"" << json_escape(git_sha) << "\"\n"
         << "}\n";
    std::ofstream out(json_path, std::ios::trunc);
    out << json.str();
    if (!out.good()) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }

  bool gates_ok = true;
  if (total.dropped != 0) {
    std::cerr << "RESPONSES DROPPED: " << total.dropped
              << " requests got no structured response ("
              << total.first_error << ")\n";
    gates_ok = false;
  }
  if (total.failed != 0) {
    std::cerr << "RESPONSES WRONG: " << total.failed
              << " malformed/mismatched responses (" << total.first_error
              << ")\n";
    gates_ok = false;
  }
  if (total.busy == 0) {
    std::cerr << "ADMISSION CONTROL SILENT: " << issued << " requests from "
              << clients
              << " clients against starved shards produced zero BUSY "
                 "responses\n";
    gates_ok = false;
  }
  if (total.ok == 0) {
    std::cerr << "NOTHING ADMITTED: every request was shed\n";
    gates_ok = false;
  }
  if (p95 > p99_limit_s * 1e3 || p99 > p99_limit_s * 1e3) {
    std::cerr << "LATENCY UNBOUNDED: admitted p95 " << bench::fmt(p95, 1)
              << " ms / p99 " << bench::fmt(p99, 1)
              << " ms exceed the limit of " << bench::fmt(p99_limit_s * 1e3, 1)
              << " ms\n";
    gates_ok = false;
  }
  return gates_ok ? 0 : 1;
}
