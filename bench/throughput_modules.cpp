// THROUGHPUT — module compilation scaling vs. worker count.
//
// Generates a mixed 64-function module (kernel-suite variants + seeded
// random programs), compiles it through pipeline::CompilationDriver at
// increasing --jobs, and reports functions/sec plus speedup over the
// single-threaded run. Also asserts the determinism guarantee: every job
// count must produce byte-identical per-function IR and fingerprints.
//
//   bench_throughput_modules [--functions=N] [--max-jobs=N] [--csv]
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "ir/printer.hpp"
#include "pipeline/driver.hpp"
#include "support/string_utils.hpp"
#include "workload/modules.hpp"

using namespace tadfa;

namespace {

// The paper's Sec. 4 flow minus the critical-variable transforms (which
// can legitimately fail on functions with nothing critical): every
// function runs allocation, the thermal DFA, heat-guided re-allocation,
// and scheduling — the DFA dominates, which is exactly the per-function
// work the pool parallelizes.
constexpr const char* kSpec =
    "cse,dce,alloc=linear:first_free,thermal-dfa,"
    "alloc=coloring:coolest_first,schedule";

struct Snapshot {
  std::vector<std::string> printed;
  std::vector<std::uint64_t> fingerprints;
};

Snapshot snapshot(const pipeline::ModulePipelineResult& result) {
  Snapshot s;
  for (const auto& f : result.functions) {
    s.printed.push_back(ir::to_string(f.run.state.func));
    s.fingerprints.push_back(ir::fingerprint(f.run.state.func));
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t functions = 64;
  unsigned max_jobs = std::max(8u, std::thread::hardware_concurrency());
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long long n = 0;
    if (starts_with(arg, "--functions=") &&
        parse_int(arg.substr(12), n) && n > 0) {
      functions = static_cast<std::size_t>(n);
    } else if (starts_with(arg, "--max-jobs=") &&
               parse_int(arg.substr(11), n) && n > 0) {
      max_jobs = static_cast<unsigned>(n);
    } else if (arg == "--csv") {
      csv = true;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--functions=N] [--max-jobs=N] [--csv]\n";
      return 2;
    }
  }

  workload::ModuleConfig mcfg;
  mcfg.functions = functions;
  mcfg.seed = 7;
  const ir::Module module = workload::make_mixed_module(mcfg);

  bench::Rig rig;
  pipeline::PipelineContext ctx;
  ctx.floorplan = &rig.fp;
  ctx.grid = &rig.grid;
  ctx.power = &rig.power;

  pipeline::CompilationDriver driver(ctx);
  // Checkpoints stay on: production throughput includes verification.

  // Speedup is bounded by the machine: a 1-core container shows ~1.0x at
  // every job count while still proving the determinism guarantee.
  std::cout << "hardware threads: " << std::thread::hardware_concurrency()
            << "\n";

  TextTable table("module throughput — " + std::to_string(functions) +
                  " functions, spec: " + kSpec);
  table.set_header(
      {"jobs", "wall s", "funcs/sec", "speedup", "ok", "identical"});

  Snapshot reference;
  double serial_seconds = 0;
  bool all_identical = true;
  for (unsigned jobs = 1; jobs <= max_jobs; jobs *= 2) {
    driver.set_jobs(jobs);
    const auto result = driver.compile(module, kSpec);
    if (!result.ok) {
      std::cerr << "compilation failed at jobs=" << jobs << ": "
                << result.error << "\n";
      return 1;
    }
    const Snapshot snap = snapshot(result);
    bool identical = true;
    if (jobs == 1) {
      reference = snap;
      serial_seconds = result.total_seconds;
    } else {
      identical = snap.printed == reference.printed &&
                  snap.fingerprints == reference.fingerprints;
      all_identical = all_identical && identical;
    }
    const double fps =
        static_cast<double>(functions) /
        (result.total_seconds > 0 ? result.total_seconds : 1e-12);
    table.add_row({std::to_string(result.jobs),
                   TextTable::num(result.total_seconds, 3),
                   TextTable::num(fps, 1),
                   TextTable::num(serial_seconds /
                                      (result.total_seconds > 0
                                           ? result.total_seconds
                                           : 1e-12),
                                  2),
                   "yes", identical ? "yes" : "NO"});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  if (!all_identical) {
    std::cerr << "DETERMINISM VIOLATED: parallel output differs from "
                 "--jobs=1\n";
    return 1;
  }
  return 0;
}
