// SEC4-B — the spreading vs. bank power-gating tension of Sec. 4:
// "power reduction techniques based on switching off register banks could
// not theoretically be applied after the spread register assignment, and
// a compromise ... can be explored at the compiler level."
//
// Sweeps the number of banks the allocator may use (1..4) for first_free
// and farthest_spread(-within-limit) policies; gates the unused banks;
// reports measured peak temperature, max gradient, leakage energy, and
// total RF energy — the Pareto frontier between thermal quality and
// leakage savings.
#include "bench_common.hpp"

#include <iostream>

#include "opt/bank_gating.hpp"

using namespace tadfa;

int main() {
  bench::Rig rig;
  workload::Kernel kernel = workload::make_fir(96, 8);

  TextTable table(
      "SEC4-B — bank limit vs thermal quality vs leakage (fir, 4-bank RF)");
  table.set_header({"inner policy", "banks allowed", "banks gated",
                    "peak degC", "max grad K", "leakage energy nJ",
                    "total energy nJ"});

  for (const std::string inner_name : {"first_free", "farthest_spread"}) {
    for (std::uint32_t max_banks = 1; max_banks <= rig.fp.num_banks();
         ++max_banks) {
      auto inner = regalloc::make_policy(inner_name, 42);
      opt::BankLimitPolicy limited(*inner, max_banks);
      regalloc::LinearScanAllocator alloc_engine(rig.fp, limited);
      const auto alloc = alloc_engine.allocate(kernel.func);

      const opt::BankGatingPlan plan = opt::plan_bank_gating(
          rig.fp, alloc.assignment, rig.fp.config().tech.substrate_temp_k);

      const auto m = bench::measure(rig, kernel, alloc.func,
                                    alloc.assignment, 60, plan.gated);
      if (!m.ok) {
        return 1;
      }
      table.add_row(
          {inner_name, std::to_string(max_banks),
           std::to_string(plan.gated_banks),
           bench::fmt(m.replay.final_stats.peak_k - 273.15, 2),
           bench::fmt(m.replay.final_stats.max_gradient_k, 3),
           bench::fmt(m.replay.leakage_energy_j * 1e9, 2),
           bench::fmt(
               (m.replay.leakage_energy_j + m.replay.dynamic_energy_j) * 1e9,
               2)});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: confining assignment to fewer banks gates more of "
         "the file and cuts leakage energy, but concentrates activity — "
         "higher peak and steeper gradients. Full spreading (4 banks) "
         "gives the best thermal map and zero gating. The compromise the "
         "paper calls for is the interior of this table.\n";
  return 0;
}
