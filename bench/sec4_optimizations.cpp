// SEC4-O — efficacy of every optimization Sec. 4 proposes, measured
// through the full pipeline (transform -> allocate -> trace -> thermal
// replay). For each optimization we report measured peak temperature,
// max gradient, map stddev, and the performance cost in cycles —
// including the trade-offs the paper warns about (spill/NOP overhead).
//
// Every optimization is one declarative spec string run by
// pipeline::PassManager — the hand-sequenced transform/allocate glue this
// file used to carry now lives behind the pass registry.
//
// Optimizations:
//   baseline        first_free allocation, no transform
//   reassign        thermally-guided coolest-first re-assignment
//   split+reassign  live-range splitting of the top-2 critical vars first
//   spill+reassign  spilling the top-2 critical vars first
//   schedule        thermal-aware list scheduling after reassignment
//   cse+coalesce+dce fewer ALU ops = less RF read traffic
//   promote         register promotion (memory scalars -> registers)
//   nops            cooling NOPs after hot instructions
#include "bench_common.hpp"

#include <iostream>
#include <span>

#include "ir/parser.hpp"
#include "pipeline/pass_manager.hpp"

using namespace tadfa;

namespace {

constexpr const char* kBaselineSpec = "alloc=linear:first_free";

/// Specs for the per-kernel table. Where a row's old label carried a
/// transform statistic (replaced exprs, inserted NOPs...), `stat_pass`
/// names the pass whose summary to quote.
struct Variant {
  const char* label;
  const char* spec;
  const char* stat_pass = nullptr;
};

constexpr Variant kVariants[] = {
    {"baseline(first_free)", kBaselineSpec},
    {"reassign",
     "alloc=linear:first_free,thermal-dfa,alloc=linear:coolest_first"},
    {"split+reassign",
     "alloc=linear:first_free,thermal-dfa,split-hot=2,"
     "alloc=linear:coolest_first"},
    {"spill+reassign",
     "alloc=linear:first_free,thermal-dfa,spill-critical=2,"
     "alloc=linear:coolest_first"},
    {"schedule",
     "alloc=linear:first_free,thermal-dfa,alloc=linear:coolest_first,"
     "schedule"},
    {"cse+coalesce+dce", "cse,coalesce,dce,alloc=linear:first_free", "cse"},
    {"promote", "promote,alloc=linear:first_free", "promote"},
    {"nops", "alloc=linear:first_free,thermal-dfa,nops=3", "nops=3"},
};

/// Summary line of the named pass in a finished run ("" when absent).
std::string pass_summary(const pipeline::PipelineRunResult& run,
                         const std::string& pass_name) {
  for (const auto& stats : run.pass_stats) {
    if (stats.name == pass_name) {
      return stats.summary;
    }
  }
  return "";
}

/// Runs each variant's spec, measures the result, and adds a table row
/// with cycle overhead relative to the first variant. False on failure.
bool emit_variants(const pipeline::PassManager& manager,
                   const bench::Rig& rig, const workload::Kernel& kernel,
                   std::span<const Variant> variants, TextTable& table) {
  std::uint64_t base_cycles = 0;
  for (const Variant& variant : variants) {
    const auto run = manager.run(kernel.func, variant.spec);
    if (!run.ok) {
      std::cerr << variant.label << " pipeline failed: " << run.error << "\n";
      return false;
    }
    const auto m = bench::measure(rig, kernel, run.state.func,
                                  *run.state.assignment());
    if (!m.ok) {
      return false;
    }
    if (base_cycles == 0) {
      base_cycles = m.cycles;
    }
    std::string label = variant.label;
    if (variant.stat_pass != nullptr) {
      label += "(" + pass_summary(run, variant.stat_pass) + ")";
    }
    const double overhead = 100.0 *
                            (static_cast<double>(m.cycles) -
                             static_cast<double>(base_cycles)) /
                            static_cast<double>(base_cycles);
    table.add_row({label, bench::fmt(m.replay.final_stats.peak_k - 273.15, 2),
                   bench::fmt(m.replay.final_stats.range_k, 3),
                   bench::fmt(m.replay.final_stats.stddev_k, 3),
                   bench::fmt(m.replay.final_stats.max_gradient_k, 3),
                   std::to_string(m.cycles), bench::fmt(overhead, 1)});
  }
  return true;
}

}  // namespace

int main() {
  bench::Rig rig;

  pipeline::PipelineContext ctx;
  ctx.floorplan = &rig.fp;
  ctx.grid = &rig.grid;
  ctx.power = &rig.power;
  ctx.timing = rig.timing;
  ctx.dfa_config.delta_k = 0.001;
  ctx.dfa_config.max_iterations = 500;
  const pipeline::PassManager manager(ctx);

  for (const char* kernel_name : {"crc32", "fir", "idct8"}) {
    auto kernel = workload::make_kernel(kernel_name);

    TextTable table("SEC4-O — " + std::string(kernel_name) +
                    ": measured thermal effect of each optimization");
    table.set_header({"optimization", "peak degC", "range K", "stddev K",
                      "max grad K", "cycles", "cycle overhead %"});

    if (!emit_variants(manager, rig, *kernel, kVariants, table)) {
      return 1;
    }

    table.print(std::cout);
    std::cout << '\n';
  }

  // --- Register promotion on its natural prey: a loop that reloads scalar
  //     configuration values from fixed addresses every iteration.
  {
    workload::Kernel kernel;
    kernel.name = "scalar_reload";
    const auto parsed = ir::parse_function(
        "func @scalar_reload(%0) {\n"
        "entry:\n"
        "  %1 = const 0\n"
        "  %2 = const 0\n"
        "  jmp head\n"
        "head:\n"
        "  %3 = cmplt %1, %0\n"
        "  br %3, body, exit\n"
        "body:\n"
        "  %4 = load 10\n"   // scale/offset/mask reloaded every iteration
        "  %5 = load 11\n"
        "  %6 = load 12\n"
        "  %7 = mul %1, %4\n"
        "  %8 = add %7, %5\n"
        "  %9 = and %8, %6\n"
        "  %2 = add %2, %9\n"
        "  %1 = add %1, 1\n"
        "  jmp head\n"
        "exit:\n"
        "  ret %2\n"
        "}\n");
    kernel.func = *parsed;
    kernel.default_args = {256};
    kernel.init_memory = [](std::vector<std::int64_t>& mem) {
      mem[10] = 3;
      mem[11] = 17;
      mem[12] = 1023;
    };

    TextTable table(
        "SEC4-O — scalar_reload: register promotion (the Sec. 4 'promote "
        "memory-resident variables' case)");
    table.set_header({"optimization", "peak degC", "range K", "stddev K",
                      "max grad K", "cycles", "cycle overhead %"});

    const Variant variants[] = {
        {"baseline(reload scalars)", kBaselineSpec},
        {"promote", "promote=1,alloc=linear:first_free", "promote=1"},
        {"promote+spread", "promote=1,alloc=linear:farthest_spread"},
    };
    if (!emit_variants(manager, rig, kernel, variants, table)) {
      return 1;
    }
    table.print(std::cout);
    std::cout
        << "\nPromotion alone is faster but heats the RF (accesses move "
           "from the cache into registers); pairing it with a spreading "
           "assignment recovers the uniform-in-time usage the paper "
           "intends. The RF-local thermal cost vs the (unmodeled) cache "
           "energy saved is the real trade.\n\n";
  }

  std::cout
      << "Reading: spreading transforms (reassign/split) cut peak and "
         "gradients at near-zero cycle cost; spilling trades cycles for "
         "the largest power-density reduction; NOPs cool but slow the "
         "program — Sec. 4's 'apply only if no other option' caveat.\n";
  return 0;
}
