// SEC4-O — efficacy of every optimization Sec. 4 proposes, measured
// through the full pipeline (transform -> allocate -> trace -> thermal
// replay). For each optimization we report measured peak temperature,
// max gradient, map stddev, and the performance cost in cycles —
// including the trade-offs the paper warns about (spill/NOP overhead).
//
// Optimizations:
//   baseline        first_free allocation, no transform
//   reassign        thermally-guided coolest-first re-assignment
//   split+reassign  live-range splitting of the top-2 critical vars first
//   spill+reassign  spilling the top-2 critical vars first
//   schedule        thermal-aware list scheduling after reassignment
//   promote         register promotion (memory scalars -> registers)
//   nops            cooling NOPs after hot instructions
#include "bench_common.hpp"

#include <iostream>

#include "core/critical.hpp"
#include "ir/parser.hpp"
#include "opt/nop_insert.hpp"
#include "opt/coalesce.hpp"
#include "opt/cse.hpp"
#include "opt/dce.hpp"
#include "opt/promote.hpp"
#include "opt/schedule.hpp"
#include "opt/spill_critical.hpp"
#include "opt/split.hpp"

using namespace tadfa;

namespace {

struct Row {
  std::string name;
  thermal::MapStats stats;
  std::uint64_t cycles = 0;
  bool ok = false;
};

}  // namespace

int main() {
  bench::Rig rig;
  core::ThermalDfaConfig dcfg;
  dcfg.delta_k = 0.001;
  dcfg.max_iterations = 500;
  const core::ThermalDfa dfa(rig.grid, rig.power, rig.timing, dcfg);

  for (const char* kernel_name : {"crc32", "fir", "idct8"}) {
    auto kernel = workload::make_kernel(kernel_name);

    TextTable table("SEC4-O — " + std::string(kernel_name) +
                    ": measured thermal effect of each optimization");
    table.set_header({"optimization", "peak degC", "range K", "stddev K",
                      "max grad K", "cycles", "cycle overhead %"});

    // Baseline.
    const auto base_alloc = bench::allocate(rig, kernel->func, "first_free");
    const auto base =
        bench::measure(rig, *kernel, base_alloc.func, base_alloc.assignment);
    if (!base.ok) {
      return 1;
    }
    const auto base_dfa =
        dfa.analyze_post_ra(base_alloc.func, base_alloc.assignment);
    const core::ExactAssignmentModel base_model(base_alloc.func, rig.fp,
                                                base_alloc.assignment);
    const auto ranking = core::rank_critical_variables(
        base_alloc.func, base_model, base_dfa, rig.grid, rig.timing);

    auto emit = [&](const std::string& name, const bench::Measurement& m) {
      const double overhead =
          100.0 * (static_cast<double>(m.cycles) -
                   static_cast<double>(base.cycles)) /
          static_cast<double>(base.cycles);
      table.add_row({name, bench::fmt(m.replay.final_stats.peak_k - 273.15, 2),
                     bench::fmt(m.replay.final_stats.range_k, 3),
                     bench::fmt(m.replay.final_stats.stddev_k, 3),
                     bench::fmt(m.replay.final_stats.max_gradient_k, 3),
                     std::to_string(m.cycles), bench::fmt(overhead, 1)});
    };
    emit("baseline(first_free)", base);

    // Reassign (coolest-first guided by the DFA's predicted map).
    {
      const auto alloc =
          bench::allocate(rig, kernel->func, "coolest_first", 42,
                          &base_dfa.exit_reg_temps_k);
      emit("reassign",
           bench::measure(rig, *kernel, alloc.func, alloc.assignment));
    }

    // Split + reassign.
    {
      ir::Function f = kernel->func;
      std::vector<ir::Reg> top;
      for (std::size_t i = 0; i < std::min<std::size_t>(2, ranking.size());
           ++i) {
        top.push_back(ranking[i].vreg);
      }
      opt::split_live_ranges(f, top);
      const auto alloc = bench::allocate(rig, f, "coolest_first", 42,
                                         &base_dfa.exit_reg_temps_k);
      emit("split+reassign",
           bench::measure(rig, *kernel, alloc.func, alloc.assignment));
    }

    // Spill + reassign.
    {
      const auto spilled =
          opt::spill_critical_variables(kernel->func, ranking, 2);
      const auto alloc = bench::allocate(rig, spilled.func, "coolest_first",
                                         42, &base_dfa.exit_reg_temps_k);
      emit("spill+reassign",
           bench::measure(rig, *kernel, alloc.func, alloc.assignment));
    }

    // Thermal-aware scheduling on top of reassignment.
    {
      const auto alloc =
          bench::allocate(rig, kernel->func, "coolest_first", 42,
                          &base_dfa.exit_reg_temps_k);
      const auto sched = opt::thermal_schedule(alloc.func, alloc.assignment);
      emit("schedule",
           bench::measure(rig, *kernel, sched.func, alloc.assignment));
    }

    // Local CSE -> coalesce -> DCE (fewer ALU ops = less RF read traffic).
    {
      const auto cse = opt::eliminate_common_subexpressions(kernel->func);
      const auto coal = opt::coalesce_copies(cse.func);
      const auto dce = opt::eliminate_dead_code(coal.func);
      const auto alloc = bench::allocate(rig, dce.func, "first_free");
      emit("cse+coalesce+dce(" + std::to_string(cse.replaced) + " exprs)",
           bench::measure(rig, *kernel, alloc.func, alloc.assignment));
    }

    // Register promotion.
    {
      const auto promoted = opt::promote_memory_scalars(kernel->func);
      const auto alloc = bench::allocate(rig, promoted.func, "first_free");
      emit("promote(" + std::to_string(promoted.loads_replaced) + " loads)",
           bench::measure(rig, *kernel, alloc.func, alloc.assignment));
    }

    // Cooling NOPs (threshold: midway between mean and peak prediction).
    {
      const double threshold =
          0.5 * (base_dfa.exit_stats.mean_k + base_dfa.peak_anywhere_k);
      const auto nops =
          opt::insert_cooling_nops(base_alloc.func, base_dfa, threshold, 3);
      emit("nops(" + std::to_string(nops.nops_inserted) + ")",
           bench::measure(rig, *kernel, nops.func, base_alloc.assignment));
    }

    table.print(std::cout);
    std::cout << '\n';
  }

  // --- Register promotion on its natural prey: a loop that reloads scalar
  //     configuration values from fixed addresses every iteration.
  {
    workload::Kernel kernel;
    kernel.name = "scalar_reload";
    const auto parsed = ir::parse_function(
        "func @scalar_reload(%0) {\n"
        "entry:\n"
        "  %1 = const 0\n"
        "  %2 = const 0\n"
        "  jmp head\n"
        "head:\n"
        "  %3 = cmplt %1, %0\n"
        "  br %3, body, exit\n"
        "body:\n"
        "  %4 = load 10\n"   // scale/offset/mask reloaded every iteration
        "  %5 = load 11\n"
        "  %6 = load 12\n"
        "  %7 = mul %1, %4\n"
        "  %8 = add %7, %5\n"
        "  %9 = and %8, %6\n"
        "  %2 = add %2, %9\n"
        "  %1 = add %1, 1\n"
        "  jmp head\n"
        "exit:\n"
        "  ret %2\n"
        "}\n");
    kernel.func = *parsed;
    kernel.default_args = {256};
    kernel.init_memory = [](std::vector<std::int64_t>& mem) {
      mem[10] = 3;
      mem[11] = 17;
      mem[12] = 1023;
    };

    TextTable table(
        "SEC4-O — scalar_reload: register promotion (the Sec. 4 'promote "
        "memory-resident variables' case)");
    table.set_header({"optimization", "peak degC", "range K", "stddev K",
                      "max grad K", "cycles", "cycle overhead %"});

    const auto base_alloc = bench::allocate(rig, kernel.func, "first_free");
    const auto base =
        bench::measure(rig, kernel, base_alloc.func, base_alloc.assignment);
    auto emit = [&](const std::string& name, const bench::Measurement& m) {
      const double overhead =
          100.0 * (static_cast<double>(m.cycles) -
                   static_cast<double>(base.cycles)) /
          static_cast<double>(base.cycles);
      table.add_row({name, bench::fmt(m.replay.final_stats.peak_k - 273.15, 2),
                     bench::fmt(m.replay.final_stats.range_k, 3),
                     bench::fmt(m.replay.final_stats.stddev_k, 3),
                     bench::fmt(m.replay.final_stats.max_gradient_k, 3),
                     std::to_string(m.cycles), bench::fmt(overhead, 1)});
    };
    emit("baseline(reload scalars)", base);

    const auto promoted = opt::promote_memory_scalars(kernel.func, 1);
    const auto alloc = bench::allocate(rig, promoted.func, "first_free");
    emit("promote(" + std::to_string(promoted.loads_replaced) + " loads)",
         bench::measure(rig, kernel, alloc.func, alloc.assignment));
    const auto alloc_spread =
        bench::allocate(rig, promoted.func, "farthest_spread");
    emit("promote+spread",
         bench::measure(rig, kernel, alloc_spread.func,
                        alloc_spread.assignment));
    table.print(std::cout);
    std::cout
        << "\nPromotion alone is faster but heats the RF (accesses move "
           "from the cache into registers); pairing it with a spreading "
           "assignment recovers the uniform-in-time usage the paper "
           "intends. The RF-local thermal cost vs the (unmodeled) cache "
           "energy saved is the real trade.\n\n";
  }

  std::cout
      << "Reading: spreading transforms (reassign/split) cut peak and "
         "gradients at near-zero cycle cost; spilling trades cycles for "
         "the largest power-density reduction; NOPs cool but slow the "
         "program — Sec. 4's 'apply only if no other option' caveat.\n";
  return 0;
}
