// ACC — the central claim: "a compiler may be able to predict, with
// reasonable accuracy, the thermal state of the processor at every point
// in the program", without feedback-driven thermal simulation.
//
// For every kernel we compare three predictors against the trace-driven
// ground truth (interpreter trace -> power -> RC transient to settle):
//   1. post-RA DFA with profiled block frequencies (best case),
//   2. post-RA DFA with static frequency estimates (no profiling),
//   3. pre-RA predictive DFA (first-fit access model — the paper's
//      "more ambitious possibility", expected to lose accuracy).
// Metrics: RMSE (K), peak error (K), Pearson correlation of the register
// maps, and Jaccard overlap of the top-4 hottest registers.
//
// A second table shows prediction error vs program irregularity (the
// paper's "too difficult to predict at compile time" case).
#include "bench_common.hpp"

#include <iostream>

#include "dataflow/liveness.hpp"

using namespace tadfa;

namespace {

struct Score {
  double rmse_k = 0;
  double peak_err_k = 0;
  double pearson = 0;
  double jaccard4 = 0;
};

Score score(const std::vector<double>& predicted,
            const std::vector<double>& truth, double truth_peak,
            double predicted_peak) {
  Score s;
  s.rmse_k = stats::rmse(predicted, truth);
  s.peak_err_k = std::abs(predicted_peak - truth_peak);
  s.pearson = stats::pearson(predicted, truth);
  s.jaccard4 = stats::jaccard(stats::top_k_indices(predicted, 4),
                              stats::top_k_indices(truth, 4));
  return s;
}

}  // namespace

int main() {
  bench::Rig rig;

  TextTable table(
      "ACC — DFA prediction vs trace-driven thermal simulation "
      "(first_free allocation)");
  table.set_header({"kernel", "predictor", "RMSE K", "peak err K",
                    "pearson", "top4 jaccard"});

  for (const auto& kernel : workload::standard_suite()) {
    const auto alloc = bench::allocate(rig, kernel.func, "first_free");

    // Ground truth.
    sim::Interpreter interp(alloc.func, rig.timing);
    if (kernel.init_memory) {
      kernel.init_memory(interp.memory());
    }
    power::AccessTrace trace(rig.fp.num_registers());
    const auto run =
        interp.run_traced(kernel.default_args, alloc.assignment, trace);
    if (!run.ok()) {
      std::cerr << kernel.name << " trapped\n";
      return 1;
    }
    const sim::ThermalReplay replay(rig.grid, rig.power);
    sim::ReplayConfig rcfg;
    rcfg.max_repeats = 60;
    const auto truth = replay.replay(trace, rcfg);

    core::ThermalDfaConfig cfg;
    cfg.delta_k = 0.001;
    cfg.max_iterations = 500;

    // 1. Post-RA, profiled.
    core::ThermalDfa profiled(rig.grid, rig.power, rig.timing, cfg);
    profiled.set_block_profile(std::vector<double>(
        run.block_visits.begin(), run.block_visits.end()));
    const auto r_prof = profiled.analyze_post_ra(alloc.func, alloc.assignment);

    // 2. Post-RA, static frequencies.
    const core::ThermalDfa static_dfa(rig.grid, rig.power, rig.timing, cfg);
    const auto r_static =
        static_dfa.analyze_post_ra(alloc.func, alloc.assignment);

    // 3. Pre-RA predictive (first-fit window model from liveness).
    const dataflow::Cfg cfg_graph(alloc.func);
    const dataflow::Liveness lv(cfg_graph);
    const core::FirstFitPredictionModel pre_model(alloc.func, rig.fp,
                                                  lv.max_pressure());
    const auto r_pre = static_dfa.analyze(alloc.func, pre_model);

    const auto add = [&](const char* predictor,
                         const core::ThermalDfaResult& r) {
      const Score s = score(r.exit_reg_temps_k, truth.final_reg_temps,
                            truth.final_stats.peak_k, r.exit_stats.peak_k);
      table.add_row({kernel.name, predictor, bench::fmt(s.rmse_k, 4),
                     bench::fmt(s.peak_err_k, 4), bench::fmt(s.pearson, 3),
                     bench::fmt(s.jaccard4, 2)});
    };
    add("postRA+profile", r_prof);
    add("postRA+static", r_static);
    add("preRA+firstfit", r_pre);
  }
  table.print(std::cout);

  // --- Irregularity vs accuracy ----------------------------------------------
  TextTable irr(
      "ACC-IRR — prediction error vs program irregularity "
      "(postRA+static, 10 seeds each)");
  irr.set_header({"irregularity", "mean RMSE K", "mean pearson",
                  "mean top4 jaccard"});
  for (double irregularity : {0.0, 0.5, 1.0}) {
    stats::Accumulator rmse_acc;
    stats::Accumulator pearson_acc;
    stats::Accumulator jac_acc;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      workload::RandomProgramConfig pcfg;
      pcfg.seed = seed;
      pcfg.target_instructions = 140;
      pcfg.irregularity = irregularity;
      ir::Function f = workload::random_program(pcfg);
      const auto alloc = bench::allocate(rig, f, "first_free");

      sim::Interpreter interp(alloc.func, rig.timing);
      power::AccessTrace trace(rig.fp.num_registers());
      const auto run = interp.run_traced(std::vector<std::int64_t>{12345},
                                         alloc.assignment, trace);
      if (!run.ok()) {
        continue;
      }
      const sim::ThermalReplay replay(rig.grid, rig.power);
      sim::ReplayConfig rcfg;
      rcfg.max_repeats = 60;
      const auto truth = replay.replay(trace, rcfg);

      core::ThermalDfaConfig cfg;
      cfg.delta_k = 0.001;
      cfg.max_iterations = 500;
      const core::ThermalDfa dfa(rig.grid, rig.power, rig.timing, cfg);
      const auto r = dfa.analyze_post_ra(alloc.func, alloc.assignment);
      const Score s = score(r.exit_reg_temps_k, truth.final_reg_temps,
                            truth.final_stats.peak_k, r.exit_stats.peak_k);
      rmse_acc.add(s.rmse_k);
      pearson_acc.add(s.pearson);
      jac_acc.add(s.jaccard4);
    }
    irr.add_row({bench::fmt(irregularity, 1), bench::fmt(rmse_acc.mean(), 4),
                 bench::fmt(pearson_acc.mean(), 3),
                 bench::fmt(jac_acc.mean(), 2)});
  }
  irr.print(std::cout);

  std::cout
      << "\nReading: post-RA prediction tracks the simulated truth "
         "closely (high correlation, small peak error); dropping profile "
         "data costs ~1 K of absolute accuracy on long loops (static "
         "trip-count guess of 10 vs real counts) while preserving rank "
         "order; the pre-RA predictive mode captures the first-fit "
         "clustering but loses per-register detail (correlation collapses "
         "on crc32/fir) — the accuracy loss the paper anticipates for "
         "analyses run before register allocation.\n"
         "Honest negative: the irregularity sweep does NOT show the "
         "hypothesized accuracy degradation — hotspot overlap is noisy "
         "but correlation stays ~0.96 at every irregularity level. In "
         "this implementation the dominant static-prediction error is "
         "loop trip-count misestimation, not branch irregularity; see "
         "EXPERIMENTS.md.\n";
  return 0;
}
