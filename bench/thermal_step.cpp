// THERMAL STEP — transient-kernel and steady-state fast-path benchmark.
//
// The before/after pair behind ROADMAP item 3: for each grid subdivision
// it times ThermalGrid::step() through the reference scalar kernel and
// the fast tiers (omp-simd SoA, AVX2+FMA when the CPU has it), measures
// active-set vs full-sweep steady_state() work, warm vs cold start, and
// step_batch vs sequential stepping — and verifies the fast results stay
// within the documented tolerance of the reference before reporting any
// speedup. Exit 1 when the fast tier is slower than the gate demands at
// subdivision >= 2, when accuracy drifts, or when a warm start fails to
// reduce sweeps: the speedup is tracked, not claimed.
//
// With --json=PATH the headline numbers are written as the repo's
// benchmark artifact (every top-level metric is higher-is-better, as
// tools/bench_history.py expects):
//
//   {"bench": ..., "config": {...}, "step_speedup": ...,
//    "steady_state_speedup": ..., "git_sha": ...}
//
//   bench_thermal_step [--subdivisions=1,2,4] [--min-time=S]
//                      [--min-speedup=X] [--max-dev-k=K]
//                      [--json=PATH] [--git-sha=SHA] [--csv]
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "support/string_utils.hpp"
#include "thermal/grid.hpp"

using namespace tadfa;
using thermal::StepKernel;
using thermal::ThermalGrid;
using thermal::ThermalState;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deterministic, spatially uneven per-register power (watts).
std::vector<double> make_power(std::size_t num_registers) {
  std::vector<double> p(num_registers, 0.0);
  for (std::size_t r = 0; r < num_registers; ++r) {
    p[r] = 5e-3 * (1.0 + static_cast<double>((r * 37) % 101) / 101.0);
  }
  return p;
}

/// Concentrated hotspot power: the paper's Fig. 1 shape, and the most
/// favorable regime for active-set steady state (spatially non-uniform
/// per-sweep movement).
std::vector<double> make_hotspot_power(std::size_t num_registers) {
  std::vector<double> p(num_registers, 0.0);
  const std::size_t hot = std::max<std::size_t>(num_registers / 8, 1);
  for (std::size_t r = 0; r < hot; ++r) {
    p[r] = 8e-3 * (1.0 + static_cast<double>((r * 13) % 7) / 7.0);
  }
  return p;
}

struct StepTiming {
  double nodes_per_sec = 0;
  int calls = 0;
};

/// Times step() through `kernel`: node-updates (nodes × substeps) per
/// wall second, running until `min_time` has elapsed.
StepTiming time_step(const ThermalGrid& grid, StepKernel kernel,
                     const std::vector<double>& power, double dt,
                     double min_time) {
  ThermalState state = grid.initial_state();
  grid.step_with(kernel, state, power, dt);  // warm-up: scratch + tables
  const int substeps = static_cast<int>(std::ceil(dt / grid.max_stable_dt()));
  StepTiming t;
  const double t0 = now_seconds();
  double elapsed = 0;
  do {
    grid.step_with(kernel, state, power, dt);
    ++t.calls;
    elapsed = now_seconds() - t0;
  } while (elapsed < min_time);
  t.nodes_per_sec = bench::per_sec(
      grid.node_count() * static_cast<std::size_t>(substeps) *
          static_cast<std::size_t>(t.calls),
      elapsed);
  return t;
}

/// Largest |Δ| between two states (kelvin).
double max_abs_dev(const ThermalState& a, const ThermalState& b) {
  double dev = 0;
  for (std::size_t i = 0; i < a.node_temps.size(); ++i) {
    dev = std::max(dev, std::abs(a.node_temps[i] - b.node_temps[i]));
  }
  return dev;
}

/// Integrates `calls` transient steps through `kernel` from cold.
ThermalState integrate(const ThermalGrid& grid, StepKernel kernel,
                       const std::vector<double>& power, double dt,
                       int calls) {
  ThermalState state = grid.initial_state();
  for (int i = 0; i < calls; ++i) {
    grid.step_with(kernel, state, power, dt);
  }
  return state;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<unsigned> subdivisions = {1, 2, 4};
  double min_time = 0.15;
  double min_speedup = 2.0;
  // 10 µK: far below any physical signal (hotspot rises are kelvins).
  // The slack is dominated by the steady-state stopping rule — both
  // solvers stop on per-sweep movement, which bounds solution error
  // only up to the convergence rate — not by kernel arithmetic.
  double max_dev_k = 1e-5;
  std::string json_path;
  std::string git_sha;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long long n = 0;
    if (starts_with(arg, "--subdivisions=")) {
      subdivisions.clear();
      for (const std::string& field : split(arg.substr(15), ',')) {
        if (!parse_int(trim(field), n) || n < 1) {
          std::cerr << "bad --subdivisions value '" << field << "'\n";
          return 2;
        }
        subdivisions.push_back(static_cast<unsigned>(n));
      }
    } else if (starts_with(arg, "--min-time=") &&
               parse_double(arg.substr(11), min_time) && min_time > 0) {
    } else if (starts_with(arg, "--min-speedup=") &&
               parse_double(arg.substr(14), min_speedup) &&
               min_speedup >= 0) {
    } else if (starts_with(arg, "--max-dev-k=") &&
               parse_double(arg.substr(12), max_dev_k) && max_dev_k > 0) {
    } else if (starts_with(arg, "--json=")) {
      json_path = arg.substr(7);
    } else if (starts_with(arg, "--git-sha=")) {
      git_sha = arg.substr(10);
    } else if (arg == "--csv") {
      csv = true;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--subdivisions=1,2,4] [--min-time=S]"
                   " [--min-speedup=X] [--max-dev-k=K] [--json=PATH]"
                   " [--git-sha=SHA] [--csv]\n";
      return 2;
    }
  }
  if (subdivisions.empty()) {
    std::cerr << "--subdivisions needs at least one value\n";
    return 2;
  }
  if (git_sha.empty()) {
    const char* env = std::getenv("GITHUB_SHA");
    git_sha = env != nullptr ? env : "unknown";
  }

  const machine::Floorplan fp(machine::RegisterFileConfig::default_config());
  const std::vector<double> power = make_power(fp.num_registers());
  const std::vector<double> hotspot = make_hotspot_power(fp.num_registers());
  const StepKernel fast_kernel =
      ThermalGrid::kernel_available(StepKernel::kAvx2) ? StepKernel::kAvx2
                                                       : StepKernel::kSimd;

  TextTable table("thermal step/steady fast path (fast tier: " +
                  std::string(thermal::to_string(fast_kernel)) + ")");
  table.set_header({"sub", "nodes", "ref Mnodes/s", "simd x", "fast x",
                    "dev K", "steady x", "local GS", "local AS",
                    "warm sweeps"});

  struct Row {
    unsigned sub = 0;
    std::size_t nodes = 0;
    double ref_nps = 0;
    double simd_speedup = 0;
    double fast_speedup = 0;
    double step_dev_k = 0;
    double steady_dev_k = 0;
    double steady_speedup = 0;
    std::uint64_t ref_relaxations = 0;
    std::uint64_t fast_relaxations = 0;
    int ref_sweeps = 0;
    int fast_sweeps = 0;
    int cold_sweeps = 0;
    int warm_sweeps = 0;
    double batch_speedup = 0;
  };
  std::vector<Row> rows;

  for (unsigned sub : subdivisions) {
    const ThermalGrid ref_grid(fp, sub, StepKernel::kReference);
    const ThermalGrid fast_grid(fp, sub, fast_kernel);
    Row row;
    row.sub = sub;
    row.nodes = ref_grid.node_count();

    // Transient kernel: ~64 substeps per call keeps the inner loop (not
    // the power spreading) dominant, matching the DFA's usage.
    const double dt = 64.0 * ref_grid.max_stable_dt();
    const StepTiming ref_t =
        time_step(ref_grid, StepKernel::kReference, power, dt, min_time);
    const StepTiming simd_t =
        time_step(ref_grid, StepKernel::kSimd, power, dt, min_time);
    const StepTiming fast_t =
        time_step(ref_grid, fast_kernel, power, dt, min_time);
    row.ref_nps = ref_t.nodes_per_sec;
    row.simd_speedup = simd_t.nodes_per_sec / ref_t.nodes_per_sec;
    row.fast_speedup = fast_t.nodes_per_sec / ref_t.nodes_per_sec;

    // Accuracy: the fast tier must track the reference through a real
    // integration, not a single step.
    const int check_calls = 20;
    const ThermalState ref_state =
        integrate(ref_grid, StepKernel::kReference, power, dt, check_calls);
    row.step_dev_k = std::max(
        max_abs_dev(ref_state, integrate(ref_grid, StepKernel::kSimd, power,
                                         dt, check_calls)),
        max_abs_dev(ref_state,
                    integrate(ref_grid, fast_kernel, power, dt, check_calls)));

    // Steady state: full-sweep reference vs active-set on a concentrated
    // hotspot (localized power is where the active set pays — under
    // uniform power every node stays active and the tiers tie), then a
    // warm restart after a 5% power bump (the incremental-compile shape).
    thermal::SteadyStateInfo ref_info;
    thermal::SteadyStateOptions opts;
    // Each solve runs from cold, so repeats do identical work; repeat
    // until min_time to keep the one-shot jitter out of the ratio.
    const auto time_steady = [&](const ThermalGrid& grid,
                                 thermal::SteadyStateInfo* out_info,
                                 ThermalState* out_state) {
      double elapsed = 0;
      int calls = 0;
      const double t0 = now_seconds();
      do {
        *out_state = grid.steady_state(hotspot, opts, out_info);
        ++calls;
        elapsed = now_seconds() - t0;
      } while (elapsed < min_time);
      return elapsed / calls;
    };
    ThermalState ref_ss = ref_grid.initial_state();
    ThermalState fast_ss = fast_grid.initial_state();
    const double ref_steady_s = time_steady(ref_grid, &ref_info, &ref_ss);
    thermal::SteadyStateInfo fast_info;
    const double fast_steady_s =
        time_steady(fast_grid, &fast_info, &fast_ss);
    row.steady_speedup =
        ref_steady_s / (fast_steady_s > 0 ? fast_steady_s : 1e-12);
    row.steady_dev_k = max_abs_dev(ref_ss, fast_ss);
    row.ref_sweeps = ref_info.sweeps;
    row.fast_sweeps = fast_info.sweeps;

    std::vector<double> bumped = hotspot;
    for (double& w : bumped) {
      w *= 1.05;
    }
    thermal::SteadyStateInfo cold_info;
    (void)fast_grid.steady_state(bumped, opts, &cold_info);
    thermal::SteadyStateOptions warm_opts;
    warm_opts.warm_start = &fast_ss;
    thermal::SteadyStateInfo warm_info;
    (void)fast_grid.steady_state(bumped, warm_opts, &warm_info);
    row.cold_sweeps = cold_info.sweeps;
    row.warm_sweeps = warm_info.sweeps;

    // Local rebalance: one register's power changes on an already-solved
    // map (the incremental-compile shape). The worklist can only pay
    // when part of the grid never re-activates; on floorplans whose
    // thermal spreading length exceeds the die — true of the default
    // geometry, where lateral conductance dwarfs the vertical loss —
    // every node keeps moving more than δ until global convergence, so
    // the tiers tie exactly. The columns document that the active set
    // degrades to plain full sweeps with no bookkeeping overhead rather
    // than claiming a win this physics does not offer.
    std::vector<double> local = hotspot;
    local[0] *= 1.2;
    thermal::SteadyStateInfo ref_local;
    (void)ref_grid.steady_state(local, warm_opts, &ref_local);
    thermal::SteadyStateInfo fast_local;
    (void)fast_grid.steady_state(local, warm_opts, &fast_local);
    row.ref_relaxations = ref_local.relaxations;
    row.fast_relaxations = fast_local.relaxations;

    // Batched stepping: 8 lanes through shared tables vs one lane at a
    // time through the reference kernel — the same arithmetic on both
    // sides (step_batch is reference math by contract), so the ratio
    // isolates what batching buys: each node's conductance row is
    // loaded once and reused across all lanes.
    {
      const std::size_t lanes = 8;
      std::vector<std::vector<double>> lane_powers(lanes, power);
      std::vector<ThermalState> states(lanes, ref_grid.initial_state());
      const int batch_calls = std::max(1, ref_t.calls / 8);
      ref_grid.step_batch(states, lane_powers, dt);  // warm-up
      double t0 = now_seconds();
      for (int c = 0; c < batch_calls; ++c) {
        ref_grid.step_batch(states, lane_powers, dt);
      }
      const double batch_s = now_seconds() - t0;
      for (ThermalState& s : states) {
        s = ref_grid.initial_state();
      }
      t0 = now_seconds();
      for (int c = 0; c < batch_calls; ++c) {
        for (std::size_t l = 0; l < lanes; ++l) {
          ref_grid.step(states[l], lane_powers[l], dt);
        }
      }
      const double seq_s = now_seconds() - t0;
      row.batch_speedup = seq_s / (batch_s > 0 ? batch_s : 1e-12);
    }

    table.add_row({std::to_string(sub), std::to_string(row.nodes),
                   TextTable::num(row.ref_nps / 1e6, 2),
                   TextTable::num(row.simd_speedup, 2),
                   TextTable::num(row.fast_speedup, 2),
                   TextTable::num(std::max(row.step_dev_k, row.steady_dev_k),
                                  9),
                   TextTable::num(row.steady_speedup, 2),
                   std::to_string(row.ref_relaxations),
                   std::to_string(row.fast_relaxations),
                   std::to_string(row.warm_sweeps) + "/" +
                       std::to_string(row.cold_sweeps)});
    rows.push_back(row);
  }

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  // The gated row: the largest benchmarked subdivision >= 2 (the
  // acceptance regime — bigger grids are where the fast path must pay).
  const Row* gated = nullptr;
  for (const Row& row : rows) {
    if (row.sub >= 2 && (gated == nullptr || row.sub > gated->sub)) {
      gated = &row;
    }
  }
  const Row& head = gated != nullptr ? *gated : rows.back();
  const double local_reduction =
      static_cast<double>(head.ref_relaxations) /
      static_cast<double>(std::max<std::uint64_t>(head.fast_relaxations, 1));
  const double warm_reduction =
      static_cast<double>(head.cold_sweeps) /
      static_cast<double>(std::max(head.warm_sweeps, 1));
  std::cout << "fast step speedup at subdivision " << head.sub << ": "
            << TextTable::num(head.fast_speedup, 2)
            << "x, steady-state speedup: "
            << TextTable::num(head.steady_speedup, 2)
            << "x, local-rebalance relaxation reduction: "
            << TextTable::num(local_reduction, 2)
            << "x, warm-start sweep reduction: "
            << TextTable::num(warm_reduction, 2) << "x\n";

  if (!json_path.empty()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"thermal_step\",\n"
         << "  \"config\": {\n"
         << "    \"fast_kernel\": \""
         << bench::json_escape(thermal::to_string(fast_kernel)) << "\",\n"
         << "    \"subdivision\": " << head.sub << ",\n"
         << "    \"nodes\": " << head.nodes << ",\n"
         << "    \"max_dev_k\": "
         << std::max(head.step_dev_k, head.steady_dev_k) << ",\n"
         << "    \"ref_steady_sweeps\": " << head.ref_sweeps << ",\n"
         << "    \"fast_steady_sweeps\": " << head.fast_sweeps << ",\n"
         << "    \"ref_local_relaxations\": " << head.ref_relaxations
         << ",\n"
         << "    \"fast_local_relaxations\": " << head.fast_relaxations
         << ",\n"
         << "    \"cold_sweeps\": " << head.cold_sweeps << ",\n"
         << "    \"warm_sweeps\": " << head.warm_sweeps << "\n"
         << "  },\n"
         << "  \"step_nodes_per_sec_ref\": " << head.ref_nps << ",\n"
         << "  \"step_nodes_per_sec_fast\": "
         << head.ref_nps * head.fast_speedup << ",\n"
         << "  \"step_speedup\": " << head.fast_speedup << ",\n"
         << "  \"simd_step_speedup\": " << head.simd_speedup << ",\n"
         << "  \"steady_state_speedup\": " << head.steady_speedup << ",\n"
         << "  \"local_rebalance_relax_reduction\": " << local_reduction
         << ",\n"
         << "  \"warm_start_sweep_reduction\": " << warm_reduction << ",\n"
         << "  \"batch_step_speedup\": " << head.batch_speedup << ",\n"
         << "  \"git_sha\": \"" << bench::json_escape(git_sha) << "\"\n"
         << "}\n";
    std::ofstream out(json_path, std::ios::trunc);
    out << json.str();
    if (!out.good()) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }

  // Gates. Accuracy first: a fast-but-wrong kernel must fail loudly.
  bool ok = true;
  for (const Row& row : rows) {
    if (row.step_dev_k > max_dev_k || row.steady_dev_k > max_dev_k) {
      std::cerr << "ACCURACY VIOLATED: subdivision " << row.sub
                << " fast-path deviation " << row.step_dev_k << " / "
                << row.steady_dev_k << " K exceeds " << max_dev_k << " K\n";
      ok = false;
    }
  }
  if (gated != nullptr && head.fast_speedup < min_speedup) {
    std::cerr << "SPEEDUP BELOW GATE: " << TextTable::num(head.fast_speedup, 2)
              << "x at subdivision " << head.sub << " is below "
              << TextTable::num(min_speedup, 2) << "x\n";
    ok = false;
  }
  if (head.warm_sweeps > head.cold_sweeps) {
    std::cerr << "WARM START REGRESSED: " << head.warm_sweeps
              << " sweeps warm vs " << head.cold_sweeps << " cold\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
