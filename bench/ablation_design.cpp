// ABL — ablations of the design choices DESIGN.md calls out. Four
// questions the paper leaves open, answered by measurement:
//
//  A. Join operator at control-flow merges (weighted mean / unweighted
//     mean / max): convergence cost and prediction accuracy.
//  B. Static trip-count guess: sensitivity of prediction error to the
//     frequency model when no profile exists.
//  C. Splitting vs. coalescing: the classic back-end optimization
//     actively undoes the paper's thermal transform — by how much?
//  D. CoolestFirst usage penalty: without it, thermally-guided assignment
//     funnels everything into one "coolest" cell and creates the next
//     hotspot.
#include "bench_common.hpp"

#include <iostream>

#include "core/critical.hpp"
#include "opt/coalesce.hpp"
#include "opt/dce.hpp"
#include "opt/split.hpp"

using namespace tadfa;

namespace {

/// Ground truth for a kernel under a given allocation.
sim::ReplayResult truth_for(const bench::Rig& rig,
                            const workload::Kernel& kernel,
                            const regalloc::AllocationResult& alloc) {
  sim::Interpreter interp(alloc.func, rig.timing);
  if (kernel.init_memory) {
    kernel.init_memory(interp.memory());
  }
  power::AccessTrace trace(rig.fp.num_registers());
  const auto run =
      interp.run_traced(kernel.default_args, alloc.assignment, trace);
  if (!run.ok()) {
    std::cerr << "trap in " << kernel.name << "\n";
    std::exit(1);
  }
  const sim::ThermalReplay replay(rig.grid, rig.power);
  sim::ReplayConfig cfg;
  cfg.max_repeats = 60;
  return replay.replay(trace, cfg);
}

}  // namespace

int main() {
  bench::Rig rig;

  // --- A: join operator -------------------------------------------------------
  {
    TextTable table("ABL-A — join operator at merges (postRA+static)");
    table.set_header({"kernel", "join", "iterations", "converged",
                      "RMSE vs truth K", "peak bias K"});
    for (const char* name : {"crc32", "stencil3", "matmul"}) {
      auto kernel = workload::make_kernel(name);
      const auto alloc = bench::allocate(rig, kernel->func, "first_free");
      const auto truth = truth_for(rig, *kernel, alloc);

      const std::pair<core::JoinMode, const char*> modes[] = {
          {core::JoinMode::kWeightedMean, "weighted_mean"},
          {core::JoinMode::kUnweightedMean, "unweighted_mean"},
          {core::JoinMode::kMax, "max"}};
      for (const auto& [mode, label] : modes) {
        core::ThermalDfaConfig cfg;
        cfg.delta_k = 0.001;
        cfg.max_iterations = 500;
        cfg.join_mode = mode;
        const core::ThermalDfa dfa(rig.grid, rig.power, rig.timing, cfg);
        const auto r = dfa.analyze_post_ra(alloc.func, alloc.assignment);
        table.add_row(
            {name, label, std::to_string(r.iterations),
             r.converged ? "yes" : "NO",
             bench::fmt(
                 stats::rmse(r.exit_reg_temps_k, truth.final_reg_temps), 4),
             bench::fmt(r.exit_stats.peak_k - truth.final_stats.peak_k,
                        4)});
      }
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // --- B: trip-count guess ----------------------------------------------------
  {
    TextTable table(
        "ABL-B — static trip-count guess vs prediction error "
        "(crc32, real trips = 64)");
    table.set_header({"trip guess", "RMSE vs truth K", "peak bias K",
                      "pearson", "iterations"});
    auto kernel = workload::make_crc32(64);
    const auto alloc = bench::allocate(rig, kernel.func, "first_free");
    const auto truth = truth_for(rig, kernel, alloc);
    for (double guess : {2.0, 5.0, 10.0, 25.0, 64.0, 200.0}) {
      core::ThermalDfaConfig cfg;
      cfg.delta_k = 0.001;
      cfg.max_iterations = 500;
      cfg.trip_count_guess = guess;
      const core::ThermalDfa dfa(rig.grid, rig.power, rig.timing, cfg);
      const auto r = dfa.analyze_post_ra(alloc.func, alloc.assignment);
      table.add_row(
          {bench::fmt(guess, 0),
           bench::fmt(stats::rmse(r.exit_reg_temps_k, truth.final_reg_temps),
                      4),
           bench::fmt(r.exit_stats.peak_k - truth.final_stats.peak_k, 4),
           bench::fmt(
               stats::pearson(r.exit_reg_temps_k, truth.final_reg_temps), 3),
           std::to_string(r.iterations)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // --- C: splitting vs coalescing ---------------------------------------------
  {
    TextTable table(
        "ABL-C — live-range splitting vs copy coalescing (crc32)");
    table.set_header({"variant", "static movs", "peak degC", "max grad K",
                      "cycles"});
    auto kernel = workload::make_crc32(48);

    auto count_movs = [](const ir::Function& f) {
      std::size_t movs = 0;
      for (const auto& b : f.blocks()) {
        for (const auto& i : b.instructions()) {
          movs += i.opcode() == ir::Opcode::kMov;
        }
      }
      return movs;
    };

    auto row = [&](const std::string& label, const ir::Function& f) {
      const auto alloc = bench::allocate(rig, f, "farthest_spread");
      const auto m = bench::measure(rig, kernel, alloc.func,
                                    alloc.assignment);
      table.add_row({label, std::to_string(count_movs(f)),
                     bench::fmt(m.replay.final_stats.peak_k - 273.15, 2),
                     bench::fmt(m.replay.final_stats.max_gradient_k, 3),
                     std::to_string(m.cycles)});
    };

    row("baseline", kernel.func);

    // Split the three hottest variables (crc, poly, i).
    ir::Function split_func = kernel.func;
    opt::split_live_ranges(split_func, {2, 3, 4});
    row("split", split_func);

    // Coalescing undoes the splitting (then DCE mops up).
    const auto coalesced = opt::coalesce_copies(split_func);
    const auto cleaned = opt::eliminate_dead_code(coalesced.func);
    row("split -> coalesce+dce", cleaned.func);

    table.print(std::cout);
    std::cout << '\n';
  }

  // --- D: CoolestFirst usage penalty -------------------------------------------
  {
    TextTable table(
        "ABL-D — thermally-guided assignment with/without the usage "
        "penalty (crc32)");
    table.set_header({"variant", "distinct regs used", "predicted peak degC",
                      "measured peak degC", "measured max grad K"});
    auto kernel = workload::make_crc32(48);
    const auto base = bench::allocate(rig, kernel.func, "first_free");
    core::ThermalDfaConfig cfg;
    cfg.delta_k = 0.001;
    cfg.max_iterations = 500;
    const core::ThermalDfa dfa(rig.grid, rig.power, rig.timing, cfg);
    const auto base_dfa = dfa.analyze_post_ra(base.func, base.assignment);

    // With penalty: the shipped CoolestFirstPolicy.
    {
      const auto alloc = bench::allocate(rig, kernel.func, "coolest_first",
                                         42, &base_dfa.exit_reg_temps_k);
      const auto pred = dfa.analyze_post_ra(alloc.func, alloc.assignment);
      const auto m = bench::measure(rig, kernel, alloc.func,
                                    alloc.assignment);
      table.add_row(
          {"coolest_first (with penalty)",
           std::to_string(alloc.assignment.used_physical().size()),
           bench::fmt(pred.exit_stats.peak_k - 273.15, 2),
           bench::fmt(m.replay.final_stats.peak_k - 273.15, 2),
           bench::fmt(m.replay.final_stats.max_gradient_k, 3)});
    }
    // Without the penalty: the naive always-the-coolest-cell rule.
    {
      regalloc::CoolestFirstPolicy naive(/*spread_penalty=*/false);
      regalloc::LinearScanAllocator engine(rig.fp, naive);
      engine.set_heat_scores(base_dfa.exit_reg_temps_k);
      const auto alloc = engine.allocate(kernel.func);
      const auto pred = dfa.analyze_post_ra(alloc.func, alloc.assignment);
      const auto m = bench::measure(rig, kernel, alloc.func,
                                    alloc.assignment);
      table.add_row(
          {"coolest_first_naive (no penalty)",
           std::to_string(alloc.assignment.used_physical().size()),
           bench::fmt(pred.exit_stats.peak_k - 273.15, 2),
           bench::fmt(m.replay.final_stats.peak_k - 273.15, 2),
           bench::fmt(m.replay.final_stats.max_gradient_k, 3)});
    }
    table.print(std::cout);
  }

  std::cout
      << "\nReading: (A) surprise — on loop-dominated kernels the MAX "
         "join is far more accurate than the mean joins (RMSE 0.07 vs "
         "1.3 K on crc32): it refuses to dilute the loop steady state "
         "with the cold entry state, compensating the static trip-count "
         "underestimate. The price is ~8x the iterations, and it "
         "overpredicts on branchy code (matmul bias +0.58 K). Mean joins "
         "+ profile data remain the accurate-and-fast combination. "
         "(B) prediction error collapses as the trip guess approaches "
         "the real count — the frequency model, not the thermal model, "
         "is the static mode's accuracy bottleneck. (C) coalescing "
         "deletes the split copies and returns the map exactly to "
         "baseline: thermal-aware back-ends must exempt split copies "
         "from coalescing. (D) without the usage penalty, coolest-first "
         "piles values onto 8 cells and re-creates the hotspot (+0.38 K "
         "peak, 2.3x gradient).\n";
  return 0;
}
