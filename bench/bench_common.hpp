// Shared experiment plumbing for the bench harnesses: a standard rig
// (floorplan/grid/power/timing), the allocate-run-trace-replay pipeline,
// and map printing. Every bench binary prints the exact rows recorded in
// EXPERIMENTS.md.
#pragma once

#include <iostream>
#include <optional>
#include <string>

#include "core/thermal_dfa.hpp"
#include "power/model.hpp"
#include "regalloc/graph_coloring.hpp"
#include "regalloc/linear_scan.hpp"
#include "regalloc/policy.hpp"
#include "sim/interpreter.hpp"
#include "sim/thermal_replay.hpp"
#include "support/heatmap.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"
#include "thermal/map_stats.hpp"
#include "workload/kernels.hpp"
#include "workload/random_program.hpp"

namespace tadfa::bench {

struct Rig {
  machine::Floorplan fp{machine::RegisterFileConfig::default_config()};
  thermal::ThermalGrid grid{fp};
  power::PowerModel power{fp.config()};
  machine::TimingModel timing;

  explicit Rig(machine::RegisterFileConfig cfg =
                   machine::RegisterFileConfig::default_config())
      : fp(cfg), grid(fp), power(cfg) {}
};

/// Allocates `func` with the named policy (linear scan).
inline regalloc::AllocationResult allocate(
    const Rig& rig, const ir::Function& func, const std::string& policy_name,
    std::uint64_t seed = 42,
    const std::vector<double>* heat_scores = nullptr) {
  auto policy = regalloc::make_policy(policy_name, seed);
  if (policy == nullptr) {
    std::cerr << "unknown policy: " << policy_name << "\n";
    std::exit(1);
  }
  regalloc::LinearScanAllocator alloc(rig.fp, *policy);
  if (heat_scores != nullptr) {
    alloc.set_heat_scores(*heat_scores);
  }
  return alloc.allocate(func);
}

/// Runs the kernel traced and replays the trace thermally to steady state.
struct Measurement {
  sim::ReplayResult replay;
  /// Per-register access totals from the trace (reads + writes).
  std::vector<double> access_counts;
  std::uint64_t cycles = 0;
  bool ok = false;
};

inline Measurement measure(const Rig& rig, const workload::Kernel& kernel,
                           const ir::Function& func,
                           const machine::RegisterAssignment& assignment,
                           int max_repeats = 60,
                           const std::vector<bool>& gated_banks = {}) {
  Measurement m;
  sim::Interpreter interp(func, rig.timing);
  if (kernel.init_memory) {
    kernel.init_memory(interp.memory());
  }
  power::AccessTrace trace(rig.fp.num_registers());
  const auto run = interp.run_traced(kernel.default_args, assignment, trace);
  if (!run.ok()) {
    std::cerr << "kernel " << kernel.name << " trapped: "
              << run.trap.value_or("?") << "\n";
    return m;
  }
  m.cycles = run.cycles;
  m.access_counts.reserve(trace.num_registers());
  for (const power::AccessCounts& c : trace.totals()) {
    m.access_counts.push_back(static_cast<double>(c.total()));
  }
  const sim::ThermalReplay replay(rig.grid, rig.power);
  sim::ReplayConfig cfg;
  cfg.max_repeats = max_repeats;
  cfg.gated_banks = gated_banks;
  m.replay = replay.replay(trace, cfg);
  m.ok = true;
  return m;
}

/// Prints a register-file temperature map in °C with a shared scale.
inline void print_map(const Rig& rig, const std::vector<double>& temps_k,
                      const std::string& caption,
                      std::optional<double> scale_min_k = {},
                      std::optional<double> scale_max_k = {}) {
  std::vector<double> celsius(temps_k.size());
  for (std::size_t i = 0; i < temps_k.size(); ++i) {
    celsius[i] = temps_k[i] - 273.15;
  }
  HeatmapOptions opt;
  if (scale_min_k) {
    opt.scale_min = *scale_min_k - 273.15;
  }
  if (scale_max_k) {
    opt.scale_max = *scale_max_k - 273.15;
  }
  std::cout << "--- " << caption << " (degC) ---\n";
  render_heatmap(std::cout, celsius, rig.fp.rows(), rig.fp.cols(), opt);
}

inline std::string fmt(double v, int precision = 3) {
  return TextTable::num(v, precision);
}

/// Escapes a string for embedding in a JSON string literal (shared by
/// the BENCH_*.json artifact writers).
inline std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

/// count/seconds with a guard against a ~zero denominator.
inline double per_sec(std::size_t count, double seconds) {
  return static_cast<double>(count) / (seconds > 0 ? seconds : 1e-12);
}

}  // namespace tadfa::bench
