// FIG2 — the iterative analysis of the paper's Figure 2: δ-controlled
// fixed point. Reports, per kernel and per δ:
//   - iterations to converge (or CAP = declared non-convergent),
//   - the final max per-instruction change,
//   - analysis wall time.
// Then sweeps random-program irregularity at fixed δ, reporting both
// iteration counts and non-convergence rate under a tight cap — the
// paper's "reasonable number of iterations must be determined
// empirically" knob.
#include "bench_common.hpp"

#include <iostream>

using namespace tadfa;

int main() {
  bench::Rig rig;
  const std::vector<double> deltas{1.0, 0.1, 0.01, 0.001, 0.0001};

  TextTable table("FIG2 — iterations to converge vs delta (cap 500)");
  std::vector<std::string> header{"kernel"};
  for (double d : deltas) {
    header.push_back("d=" + bench::fmt(d, 4));
  }
  header.push_back("time@d=0.01 ms");
  table.set_header(header);

  for (const char* name : {"counter", "vecsum", "crc32", "fir", "poly7",
                           "idct8", "matmul", "stencil3"}) {
    auto kernel = workload::make_kernel(name);
    const auto alloc = bench::allocate(rig, kernel->func, "first_free");
    std::vector<std::string> row{name};
    double time_ms = 0;
    for (double d : deltas) {
      core::ThermalDfaConfig cfg;
      cfg.delta_k = d;
      cfg.max_iterations = 500;
      const core::ThermalDfa dfa(rig.grid, rig.power, rig.timing, cfg);
      const auto r = dfa.analyze_post_ra(alloc.func, alloc.assignment);
      row.push_back(r.converged ? std::to_string(r.iterations) : "CAP");
      if (d == 0.01) {
        time_ms = r.analysis_seconds * 1e3;
      }
    }
    row.push_back(bench::fmt(time_ms, 2));
    table.add_row(row);
  }
  table.print(std::cout);

  // --- Irregularity sweep -----------------------------------------------------
  TextTable irr_table(
      "FIG2 — random programs: irregularity vs convergence "
      "(delta=0.001 K, 12 seeds)");
  irr_table.set_header({"irregularity", "mean iterations", "max iterations",
                        "nonconverged@cap60", "mean final delta K"});
  for (double irregularity : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    stats::Accumulator iters;
    int nonconverged = 0;
    stats::Accumulator final_delta;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      workload::RandomProgramConfig pcfg;
      pcfg.seed = seed;
      pcfg.target_instructions = 140;
      pcfg.irregularity = irregularity;
      ir::Function f = workload::random_program(pcfg);
      const auto alloc = bench::allocate(rig, f, "first_free");

      core::ThermalDfaConfig cfg;
      cfg.delta_k = 0.001;
      cfg.max_iterations = 500;
      const core::ThermalDfa dfa(rig.grid, rig.power, rig.timing, cfg);
      const auto r = dfa.analyze_post_ra(alloc.func, alloc.assignment);
      iters.add(r.iterations);
      final_delta.add(r.final_delta_k);

      core::ThermalDfaConfig capped = cfg;
      capped.max_iterations = 60;  // an aggressive "reasonable number"
      const core::ThermalDfa dfa_capped(rig.grid, rig.power, rig.timing,
                                        capped);
      nonconverged +=
          !dfa_capped.analyze_post_ra(alloc.func, alloc.assignment).converged;
    }
    irr_table.add_row({bench::fmt(irregularity, 2),
                       bench::fmt(iters.mean(), 1),
                       bench::fmt(iters.max(), 0),
                       std::to_string(nonconverged) + "/12",
                       bench::fmt(final_delta.mean(), 5)});
  }
  irr_table.print(std::cout);

  std::cout
      << "\nReading: iterations grow as delta tightens (top table); the "
         "cap turns slow convergence into an explicit non-convergence "
         "diagnostic (bottom table). NOTE (departure from the paper's "
         "intuition): with a frequency-weighted mean join, convergence "
         "speed is set by delta and loop thermal mass, and branch "
         "irregularity has no significant effect on iteration count — "
         "irregularity instead degrades prediction *accuracy* (see "
         "accuracy_vs_simulation).\n";
  return 0;
}
