// PERF — google-benchmark micro-benchmarks: the analysis must be cheap
// enough to live inside a compiler. Measures the thermal DFA end to end
// vs. program size, RF size, and grid granularity; plus the underlying
// primitives (thermal step, steady state, liveness, allocation).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "dataflow/interference.hpp"
#include "dataflow/liveness.hpp"
#include "dataflow/loop_info.hpp"
#include "pipeline/analysis_manager.hpp"
#include "pipeline/pass_manager.hpp"

namespace {

using namespace tadfa;

bench::Rig& rig() {
  static bench::Rig r;
  return r;
}

/// Largest kernel in the standard suite (by instruction count) — the
/// workload the cold-vs-cached analysis benchmarks run on.
const workload::Kernel& largest_kernel() {
  static const workload::Kernel kernel = [] {
    workload::Kernel best;
    for (const workload::Kernel& k : workload::standard_suite()) {
      if (k.func.instruction_count() > best.func.instruction_count()) {
        best = k;
      }
    }
    return best;
  }();
  return kernel;
}

void BM_ThermalStep(benchmark::State& state) {
  const auto sub = static_cast<unsigned>(state.range(0));
  const thermal::ThermalGrid grid(rig().fp, sub);
  auto s = grid.initial_state();
  std::vector<double> p(rig().fp.num_registers(), 1e-4);
  for (auto _ : state) {
    grid.step(s, p, grid.max_stable_dt());
    benchmark::DoNotOptimize(s.node_temps.data());
  }
  state.SetLabel(std::to_string(grid.node_count()) + " nodes");
}
BENCHMARK(BM_ThermalStep)->Arg(1)->Arg(2)->Arg(4);

void BM_SteadyState(benchmark::State& state) {
  const auto sub = static_cast<unsigned>(state.range(0));
  const thermal::ThermalGrid grid(rig().fp, sub);
  std::vector<double> p(rig().fp.num_registers(), 1e-4);
  for (auto _ : state) {
    auto s = grid.steady_state(p);
    benchmark::DoNotOptimize(s.node_temps.data());
  }
}
BENCHMARK(BM_SteadyState)->Arg(1)->Arg(2);

void BM_Liveness(benchmark::State& state) {
  workload::RandomProgramConfig cfg;
  cfg.seed = 3;
  cfg.target_instructions = static_cast<int>(state.range(0));
  const ir::Function f = workload::random_program(cfg);
  const dataflow::Cfg graph(f);
  for (auto _ : state) {
    dataflow::Liveness lv(graph);
    benchmark::DoNotOptimize(&lv);
  }
  state.SetLabel(std::to_string(f.instruction_count()) + " instrs");
}
BENCHMARK(BM_Liveness)->Arg(100)->Arg(400)->Arg(1600);

void BM_LinearScan(benchmark::State& state) {
  workload::RandomProgramConfig cfg;
  cfg.seed = 5;
  cfg.target_instructions = static_cast<int>(state.range(0));
  const ir::Function f = workload::random_program(cfg);
  regalloc::FirstFreePolicy policy;
  regalloc::LinearScanAllocator alloc(rig().fp, policy);
  for (auto _ : state) {
    auto r = alloc.allocate(f);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_LinearScan)->Arg(100)->Arg(400);

void BM_GraphColoring(benchmark::State& state) {
  workload::RandomProgramConfig cfg;
  cfg.seed = 5;
  cfg.target_instructions = static_cast<int>(state.range(0));
  const ir::Function f = workload::random_program(cfg);
  regalloc::FirstFreePolicy policy;
  regalloc::GraphColoringAllocator alloc(rig().fp, policy);
  for (auto _ : state) {
    auto r = alloc.allocate(f);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_GraphColoring)->Arg(100)->Arg(400);

void BM_ThermalDfa_ProgramSize(benchmark::State& state) {
  workload::RandomProgramConfig cfg;
  cfg.seed = 11;
  cfg.target_instructions = static_cast<int>(state.range(0));
  const ir::Function f = workload::random_program(cfg);
  const auto alloc = bench::allocate(rig(), f, "first_free");
  core::ThermalDfaConfig dcfg;
  dcfg.delta_k = 0.01;
  const core::ThermalDfa dfa(rig().grid, rig().power, rig().timing, dcfg);
  for (auto _ : state) {
    auto r = dfa.analyze_post_ra(alloc.func, alloc.assignment);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_ThermalDfa_ProgramSize)->Arg(60)->Arg(120)->Arg(240);

void BM_ThermalDfa_Granularity(benchmark::State& state) {
  auto kernel = workload::make_crc32(16);
  const auto alloc = bench::allocate(rig(), kernel.func, "first_free");
  const thermal::ThermalGrid grid(rig().fp,
                                  static_cast<unsigned>(state.range(0)));
  core::ThermalDfaConfig dcfg;
  dcfg.delta_k = 0.01;
  const core::ThermalDfa dfa(grid, rig().power, rig().timing, dcfg);
  for (auto _ : state) {
    auto r = dfa.analyze_post_ra(alloc.func, alloc.assignment);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_ThermalDfa_Granularity)->Arg(1)->Arg(2)->Arg(3);

void BM_ThermalDfa_RfSize(benchmark::State& state) {
  machine::RegisterFileConfig cfg;
  if (state.range(0) == 16) {
    cfg = machine::RegisterFileConfig::small_config();
  } else if (state.range(0) == 64) {
    cfg = machine::RegisterFileConfig::default_config();
  } else {
    cfg = machine::RegisterFileConfig::large_config();
  }
  bench::Rig local(cfg);
  auto kernel = workload::make_fir(48, 8);
  const auto alloc = bench::allocate(local, kernel.func, "first_free");
  core::ThermalDfaConfig dcfg;
  dcfg.delta_k = 0.01;
  const core::ThermalDfa dfa(local.grid, local.power, local.timing, dcfg);
  for (auto _ : state) {
    auto r = dfa.analyze_post_ra(alloc.func, alloc.assignment);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_ThermalDfa_RfSize)->Arg(16)->Arg(64)->Arg(128);

// --- AnalysisManager: cold vs. cached ---------------------------------------
// The full per-function analysis stack (Cfg -> Liveness -> intervals /
// interference, Dominators -> loops) on the largest workload kernel.
// "Cold" rebuilds everything per request — the old every-pass behavior;
// "cached" is what the pipeline now does between invalidations.

void BM_AnalysisSuite_Cold(benchmark::State& state) {
  const ir::Function& f = largest_kernel().func;
  for (auto _ : state) {
    pipeline::AnalysisManager am;
    benchmark::DoNotOptimize(&am.get<dataflow::InterferenceGraph>(f));
    benchmark::DoNotOptimize(&am.get<dataflow::LiveIntervals>(f));
    benchmark::DoNotOptimize(&am.get<dataflow::LoopInfo>(f));
  }
  state.SetLabel(largest_kernel().name + ", " +
                 std::to_string(f.instruction_count()) + " instrs");
}
BENCHMARK(BM_AnalysisSuite_Cold);

void BM_AnalysisSuite_Cached(benchmark::State& state) {
  const ir::Function& f = largest_kernel().func;
  pipeline::AnalysisManager am;
  for (auto _ : state) {
    benchmark::DoNotOptimize(&am.get<dataflow::InterferenceGraph>(f));
    benchmark::DoNotOptimize(&am.get<dataflow::LiveIntervals>(f));
    benchmark::DoNotOptimize(&am.get<dataflow::LoopInfo>(f));
  }
  state.SetLabel(largest_kernel().name + ", " +
                 std::to_string(f.instruction_count()) + " instrs");
}
BENCHMARK(BM_AnalysisSuite_Cached);

// A repeated-analysis pipeline spec (transform / verify interleaving, as
// a production pipeline would run it) with the analysis cache on vs. off.
// Same passes, same output — the delta is purely re-derived analyses.
void BM_RepeatedAnalysisPipeline(benchmark::State& state, bool cached) {
  pipeline::PipelineContext ctx;
  ctx.floorplan = &rig().fp;
  ctx.grid = &rig().grid;
  ctx.power = &rig().power;
  pipeline::PassManager manager(ctx);
  manager.set_checkpoints(false);
  manager.set_analysis_caching(cached);
  const ir::Function& f = largest_kernel().func;
  constexpr const char* kSpec =
      "alloc=linear:first_free,verify,dce,verify,coalesce,verify,dce,verify,"
      "coalesce,verify,dce,verify,coalesce,verify,dce,verify,"
      "coalesce,verify,dce,verify,coalesce,verify,dce,verify";
  for (auto _ : state) {
    auto result = manager.run(f, kSpec);
    benchmark::DoNotOptimize(&result);
  }
  state.SetLabel(largest_kernel().name);
}
BENCHMARK_CAPTURE(BM_RepeatedAnalysisPipeline, cold, false);
BENCHMARK_CAPTURE(BM_RepeatedAnalysisPipeline, cached, true);

void BM_Interpreter(benchmark::State& state) {
  auto kernel = workload::make_matmul(8);
  machine::TimingModel timing;
  for (auto _ : state) {
    sim::Interpreter interp(kernel.func, timing);
    kernel.init_memory(interp.memory());
    auto r = interp.run(kernel.default_args);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_Interpreter);

}  // namespace
