// PERF — google-benchmark micro-benchmarks: the analysis must be cheap
// enough to live inside a compiler. Measures the thermal DFA end to end
// vs. program size, RF size, and grid granularity; plus the underlying
// primitives (thermal step, steady state, liveness, allocation).
#include <benchmark/benchmark.h>

#include <cmath>
#include <span>
#include <vector>

#include "bench_common.hpp"
#include "dataflow/interference.hpp"
#include "dataflow/liveness.hpp"
#include "dataflow/loop_info.hpp"
#include "pipeline/analysis_manager.hpp"
#include "pipeline/pass_manager.hpp"

namespace {

using namespace tadfa;

bench::Rig& rig() {
  static bench::Rig r;
  return r;
}

/// Largest kernel in the standard suite (by instruction count) — the
/// workload the cold-vs-cached analysis benchmarks run on.
const workload::Kernel& largest_kernel() {
  static const workload::Kernel kernel = [] {
    workload::Kernel best;
    for (const workload::Kernel& k : workload::standard_suite()) {
      if (k.func.instruction_count() > best.func.instruction_count()) {
        best = k;
      }
    }
    return best;
  }();
  return kernel;
}

void BM_ThermalStep(benchmark::State& state) {
  const auto sub = static_cast<unsigned>(state.range(0));
  const thermal::ThermalGrid grid(rig().fp, sub);
  auto s = grid.initial_state();
  std::vector<double> p(rig().fp.num_registers(), 1e-4);
  for (auto _ : state) {
    grid.step(s, p, grid.max_stable_dt());
    benchmark::DoNotOptimize(s.node_temps.data());
  }
  state.SetLabel(std::to_string(grid.node_count()) + " nodes");
}
BENCHMARK(BM_ThermalStep)->Arg(1)->Arg(2)->Arg(4);

// --- ThermalGrid::step: edge-checked reference vs. flat neighbor tables ------
// step() used to walk nested row/col loops with four boundary branches
// per node; the grid now precomputes flat neighbor-index/conductance
// arrays and runs one branch-free loop. This reference reproduces the old
// inner loop (same math, same constants) so the pair measures exactly the
// hot-path rewrite.

struct ReferenceStepper {
  const machine::Floorplan* fp;
  unsigned sub;
  std::size_t rows, cols;
  double substrate_k, g_vertical, g_lateral_h, g_lateral_v, cap, stable_dt;
  std::vector<std::vector<std::size_t>> cell_nodes;

  ReferenceStepper(const machine::Floorplan& floorplan, unsigned subdivision)
      : fp(&floorplan), sub(subdivision) {
    const auto& tech = fp->config().tech;
    rows = static_cast<std::size_t>(fp->config().rows) * sub;
    cols = static_cast<std::size_t>(fp->config().cols) * sub;
    substrate_k = tech.substrate_temp_k;
    const double node_w = tech.cell_width_m / sub;
    const double node_h = tech.cell_height_m / sub;
    const double k = tech.silicon_conductivity;
    cap = node_w * node_h * tech.die_thickness_m *
          tech.silicon_volumetric_heat;
    const double r_cell =
        tech.vertical_resistance_scale /
        (2.0 * k * std::sqrt(tech.cell_area_m2() / 3.14159265358979));
    g_vertical = (1.0 / r_cell) / (sub * sub);
    g_lateral_h = k * (node_h * tech.die_thickness_m) / node_w;
    g_lateral_v = k * (node_w * tech.die_thickness_m) / node_h;
    stable_dt =
        0.9 * cap / (g_vertical + 2 * g_lateral_h + 2 * g_lateral_v);
    cell_nodes.assign(fp->num_registers(), {});
    for (machine::PhysReg r = 0; r < fp->num_registers(); ++r) {
      const std::size_t base_row =
          static_cast<std::size_t>(fp->row_of(r)) * sub;
      const std::size_t base_col =
          static_cast<std::size_t>(fp->col_of(r)) * sub;
      for (unsigned dr = 0; dr < sub; ++dr) {
        for (unsigned dc = 0; dc < sub; ++dc) {
          cell_nodes[r].push_back((base_row + dr) * cols + base_col + dc);
        }
      }
    }
  }

  // The pre-flat-table ThermalGrid::step, verbatim: per-call power
  // spreading + scratch allocation, then nested row/col loops with four
  // boundary branches per node.
  void step(std::vector<double>& t, std::span<const double> reg_power_w,
            double dt) const {
    const std::size_t n = rows * cols;
    std::vector<double> p(n, 0.0);
    const double per_node = 1.0 / (sub * sub);
    for (machine::PhysReg r = 0; r < reg_power_w.size(); ++r) {
      const double share = reg_power_w[r] * per_node;
      for (std::size_t idx : cell_nodes[r]) {
        p[idx] += share;
      }
    }
    const int substeps =
        std::max(1, static_cast<int>(std::ceil(dt / stable_dt)));
    const double h = dt / substeps;
    std::vector<double> flux(n);
    for (int s = 0; s < substeps; ++s) {
      for (std::size_t row = 0; row < rows; ++row) {
        for (std::size_t col = 0; col < cols; ++col) {
          const std::size_t i = row * cols + col;
          double q = p[i] + g_vertical * (substrate_k - t[i]);
          if (col > 0) {
            q += g_lateral_h * (t[i - 1] - t[i]);
          }
          if (col + 1 < cols) {
            q += g_lateral_h * (t[i + 1] - t[i]);
          }
          if (row > 0) {
            q += g_lateral_v * (t[i - cols] - t[i]);
          }
          if (row + 1 < rows) {
            q += g_lateral_v * (t[i + cols] - t[i]);
          }
          flux[i] = q;
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        t[i] += h * flux[i] / cap;
      }
    }
  }
};

void BM_ThermalStep_Reference(benchmark::State& state) {
  const auto sub = static_cast<unsigned>(state.range(0));
  const ReferenceStepper ref(rig().fp, sub);
  std::vector<double> t(ref.rows * ref.cols, ref.substrate_k);
  std::vector<double> p(rig().fp.num_registers(), 1e-4);
  for (auto _ : state) {
    ref.step(t, p, ref.stable_dt);
    benchmark::DoNotOptimize(t.data());
  }
  state.SetLabel(std::to_string(ref.rows * ref.cols) +
                 " nodes (edge-checked loops)");
}
BENCHMARK(BM_ThermalStep_Reference)->Arg(1)->Arg(2)->Arg(4);

void BM_SteadyState(benchmark::State& state) {
  const auto sub = static_cast<unsigned>(state.range(0));
  const thermal::ThermalGrid grid(rig().fp, sub);
  std::vector<double> p(rig().fp.num_registers(), 1e-4);
  for (auto _ : state) {
    auto s = grid.steady_state(p);
    benchmark::DoNotOptimize(s.node_temps.data());
  }
}
BENCHMARK(BM_SteadyState)->Arg(1)->Arg(2);

void BM_Liveness(benchmark::State& state) {
  workload::RandomProgramConfig cfg;
  cfg.seed = 3;
  cfg.target_instructions = static_cast<int>(state.range(0));
  const ir::Function f = workload::random_program(cfg);
  const dataflow::Cfg graph(f);
  for (auto _ : state) {
    dataflow::Liveness lv(graph);
    benchmark::DoNotOptimize(&lv);
  }
  state.SetLabel(std::to_string(f.instruction_count()) + " instrs");
}
BENCHMARK(BM_Liveness)->Arg(100)->Arg(400)->Arg(1600);

void BM_LinearScan(benchmark::State& state) {
  workload::RandomProgramConfig cfg;
  cfg.seed = 5;
  cfg.target_instructions = static_cast<int>(state.range(0));
  const ir::Function f = workload::random_program(cfg);
  regalloc::FirstFreePolicy policy;
  regalloc::LinearScanAllocator alloc(rig().fp, policy);
  for (auto _ : state) {
    auto r = alloc.allocate(f);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_LinearScan)->Arg(100)->Arg(400);

void BM_GraphColoring(benchmark::State& state) {
  workload::RandomProgramConfig cfg;
  cfg.seed = 5;
  cfg.target_instructions = static_cast<int>(state.range(0));
  const ir::Function f = workload::random_program(cfg);
  regalloc::FirstFreePolicy policy;
  regalloc::GraphColoringAllocator alloc(rig().fp, policy);
  for (auto _ : state) {
    auto r = alloc.allocate(f);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_GraphColoring)->Arg(100)->Arg(400);

void BM_ThermalDfa_ProgramSize(benchmark::State& state) {
  workload::RandomProgramConfig cfg;
  cfg.seed = 11;
  cfg.target_instructions = static_cast<int>(state.range(0));
  const ir::Function f = workload::random_program(cfg);
  const auto alloc = bench::allocate(rig(), f, "first_free");
  core::ThermalDfaConfig dcfg;
  dcfg.delta_k = 0.01;
  const core::ThermalDfa dfa(rig().grid, rig().power, rig().timing, dcfg);
  for (auto _ : state) {
    auto r = dfa.analyze_post_ra(alloc.func, alloc.assignment);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_ThermalDfa_ProgramSize)->Arg(60)->Arg(120)->Arg(240);

void BM_ThermalDfa_Granularity(benchmark::State& state) {
  auto kernel = workload::make_crc32(16);
  const auto alloc = bench::allocate(rig(), kernel.func, "first_free");
  const thermal::ThermalGrid grid(rig().fp,
                                  static_cast<unsigned>(state.range(0)));
  core::ThermalDfaConfig dcfg;
  dcfg.delta_k = 0.01;
  const core::ThermalDfa dfa(grid, rig().power, rig().timing, dcfg);
  for (auto _ : state) {
    auto r = dfa.analyze_post_ra(alloc.func, alloc.assignment);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_ThermalDfa_Granularity)->Arg(1)->Arg(2)->Arg(3);

void BM_ThermalDfa_RfSize(benchmark::State& state) {
  machine::RegisterFileConfig cfg;
  if (state.range(0) == 16) {
    cfg = machine::RegisterFileConfig::small_config();
  } else if (state.range(0) == 64) {
    cfg = machine::RegisterFileConfig::default_config();
  } else {
    cfg = machine::RegisterFileConfig::large_config();
  }
  bench::Rig local(cfg);
  auto kernel = workload::make_fir(48, 8);
  const auto alloc = bench::allocate(local, kernel.func, "first_free");
  core::ThermalDfaConfig dcfg;
  dcfg.delta_k = 0.01;
  const core::ThermalDfa dfa(local.grid, local.power, local.timing, dcfg);
  for (auto _ : state) {
    auto r = dfa.analyze_post_ra(alloc.func, alloc.assignment);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_ThermalDfa_RfSize)->Arg(16)->Arg(64)->Arg(128);

// --- AnalysisManager: cold vs. cached ---------------------------------------
// The full per-function analysis stack (Cfg -> Liveness -> intervals /
// interference, Dominators -> loops) on the largest workload kernel.
// "Cold" rebuilds everything per request — the old every-pass behavior;
// "cached" is what the pipeline now does between invalidations.

void BM_AnalysisSuite_Cold(benchmark::State& state) {
  const ir::Function& f = largest_kernel().func;
  for (auto _ : state) {
    pipeline::AnalysisManager am;
    benchmark::DoNotOptimize(&am.get<dataflow::InterferenceGraph>(f));
    benchmark::DoNotOptimize(&am.get<dataflow::LiveIntervals>(f));
    benchmark::DoNotOptimize(&am.get<dataflow::LoopInfo>(f));
  }
  state.SetLabel(largest_kernel().name + ", " +
                 std::to_string(f.instruction_count()) + " instrs");
}
BENCHMARK(BM_AnalysisSuite_Cold);

void BM_AnalysisSuite_Cached(benchmark::State& state) {
  const ir::Function& f = largest_kernel().func;
  pipeline::AnalysisManager am;
  for (auto _ : state) {
    benchmark::DoNotOptimize(&am.get<dataflow::InterferenceGraph>(f));
    benchmark::DoNotOptimize(&am.get<dataflow::LiveIntervals>(f));
    benchmark::DoNotOptimize(&am.get<dataflow::LoopInfo>(f));
  }
  state.SetLabel(largest_kernel().name + ", " +
                 std::to_string(f.instruction_count()) + " instrs");
}
BENCHMARK(BM_AnalysisSuite_Cached);

// A repeated-analysis pipeline spec (transform / verify interleaving, as
// a production pipeline would run it) with the analysis cache on vs. off.
// Same passes, same output — the delta is purely re-derived analyses.
void BM_RepeatedAnalysisPipeline(benchmark::State& state, bool cached) {
  pipeline::PipelineContext ctx;
  ctx.floorplan = &rig().fp;
  ctx.grid = &rig().grid;
  ctx.power = &rig().power;
  pipeline::PassManager manager(ctx);
  manager.set_checkpoints(false);
  manager.set_analysis_caching(cached);
  const ir::Function& f = largest_kernel().func;
  constexpr const char* kSpec =
      "alloc=linear:first_free,verify,dce,verify,coalesce,verify,dce,verify,"
      "coalesce,verify,dce,verify,coalesce,verify,dce,verify,"
      "coalesce,verify,dce,verify,coalesce,verify,dce,verify";
  for (auto _ : state) {
    auto result = manager.run(f, kSpec);
    benchmark::DoNotOptimize(&result);
  }
  state.SetLabel(largest_kernel().name);
}
BENCHMARK_CAPTURE(BM_RepeatedAnalysisPipeline, cold, false);
BENCHMARK_CAPTURE(BM_RepeatedAnalysisPipeline, cached, true);

void BM_Interpreter(benchmark::State& state) {
  auto kernel = workload::make_matmul(8);
  machine::TimingModel timing;
  for (auto _ : state) {
    sim::Interpreter interp(kernel.func, timing);
    kernel.init_memory(interp.memory());
    auto r = interp.run(kernel.default_args);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_Interpreter);

}  // namespace
