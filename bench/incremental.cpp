// INCREMENTAL — pass-boundary stage cache: spec-extension speedup.
//
// The incremental-compilation story (ISSUE 6): a module compiled under
// spec S leaves pass-boundary snapshots in the result cache; recompiling
// under an *extended* spec S+",schedule" restores each function at the
// deepest shared boundary and runs only the new tail. This bench
// measures that, with three phases through pipeline::CompilationDriver
// (stage policy enabled throughout so all phases share one keying):
//
//   cold       S          against an empty cache (stores stage entries)
//   extension  S+tail     against that cache (longest-prefix restore)
//   cold-ext   S+tail     against a second empty cache (the reference)
//
// and gates on the guarantees the CI bench-smoke job enforces:
//   * the extension output is byte-identical to cold-ext in every
//     deterministic field;
//   * >=90% of the prefix passes are skipped on the extension run;
//   * the extension run is >=5x faster than cold-ext (the DFA and both
//     allocators live in the skipped prefix).
//
// With --json=PATH the headline numbers are written as the repo's
// benchmark artifact:
//
//   {"bench": ..., "config": {...}, "extension_speedup": <x>,
//    "prefix_skip_rate": <0..1>, "git_sha": ...}
//
//   bench_incremental [--functions=N] [--jobs=N] [--cache-dir=DIR]
//                     [--json=PATH] [--git-sha=SHA] [--csv]
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ir/printer.hpp"
#include "pipeline/driver.hpp"
#include "pipeline/result_cache.hpp"
#include "support/string_utils.hpp"
#include "workload/modules.hpp"

using namespace tadfa;

namespace {

// The expensive prefix: thermal DFA plus both allocation passes — the
// work an extension run reuses from the stage cache...
constexpr const char* kPrefixSpec =
    "cse,dce,alloc=linear:first_free,thermal-dfa,"
    "alloc=coloring:coolest_first";
// ...and the extension whose tail (schedule) is all that should run.
constexpr const char* kExtendedSpec =
    "cse,dce,alloc=linear:first_free,thermal-dfa,"
    "alloc=coloring:coolest_first,schedule";
constexpr std::size_t kPrefixLen = 5;

constexpr std::uint64_t kSeed = 7;

struct Snapshot {
  std::vector<std::string> printed;
  std::vector<std::uint64_t> fingerprints;
  std::vector<std::uint32_t> spills;
  std::vector<pipeline::PassRunStats> merged;
};

Snapshot snapshot(const pipeline::ModulePipelineResult& result) {
  Snapshot s;
  for (const auto& f : result.functions) {
    s.printed.push_back(ir::to_string(f.run.state.func));
    s.fingerprints.push_back(ir::fingerprint(f.run.state.func));
    s.spills.push_back(f.run.state.spilled_regs);
  }
  s.merged = result.merged_pass_stats();
  return s;
}

/// Byte-identical in every deterministic field (seconds excepted).
bool identical(const Snapshot& a, const Snapshot& b) {
  if (a.printed != b.printed || a.fingerprints != b.fingerprints ||
      a.spills != b.spills || a.merged.size() != b.merged.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.merged.size(); ++i) {
    const auto& x = a.merged[i];
    const auto& y = b.merged[i];
    if (x.name != y.name || x.summary != y.summary ||
        x.changed != y.changed ||
        x.instructions_after != y.instructions_after ||
        x.vregs_after != y.vregs_after) {
      return false;
    }
  }
  return true;
}

using bench::json_escape;

}  // namespace

int main(int argc, char** argv) {
  std::size_t functions = 200;
  unsigned jobs = 0;  // hardware concurrency
  std::string cache_dir;
  std::string json_path;
  std::string git_sha;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long long n = 0;
    if (starts_with(arg, "--functions=") && parse_int(arg.substr(12), n) &&
        n > 0) {
      functions = static_cast<std::size_t>(n);
    } else if (starts_with(arg, "--jobs=") && parse_int(arg.substr(7), n) &&
               n >= 0) {
      jobs = static_cast<unsigned>(n);
    } else if (starts_with(arg, "--cache-dir=")) {
      cache_dir = arg.substr(12);
    } else if (starts_with(arg, "--json=")) {
      json_path = arg.substr(7);
    } else if (starts_with(arg, "--git-sha=")) {
      git_sha = arg.substr(10);
    } else if (arg == "--csv") {
      csv = true;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--functions=N] [--jobs=N] [--cache-dir=DIR]"
                   " [--json=PATH] [--git-sha=SHA] [--csv]\n";
      return 2;
    }
  }
  if (git_sha.empty()) {
    const char* env = std::getenv("GITHUB_SHA");
    git_sha = env != nullptr ? env : "unknown";
  }
  // The bench owns (and wipes) namespaced subdirectories so cold runs
  // are actually cold — never the caller's directory itself.
  namespace fs = std::filesystem;
  const fs::path root =
      cache_dir.empty() ? fs::temp_directory_path() : fs::path(cache_dir);
  const fs::path warm_dir = root / "tadfa-incremental-cache";
  const fs::path cold_dir = root / "tadfa-incremental-cache-cold";
  std::error_code ec;
  fs::remove_all(warm_dir, ec);
  fs::remove_all(cold_dir, ec);

  workload::ModuleConfig mcfg;
  mcfg.functions = functions;
  mcfg.seed = kSeed;
  const ir::Module module = workload::make_mixed_module(mcfg);

  bench::Rig rig;
  pipeline::PipelineContext ctx;
  ctx.floorplan = &rig.fp;
  ctx.grid = &rig.grid;
  ctx.power = &rig.power;

  pipeline::StagePolicy policy;
  policy.enabled = true;

  pipeline::ResultCache warm_cache(warm_dir.string());
  pipeline::ResultCache cold_cache(cold_dir.string());
  if (!warm_cache.ok() || !cold_cache.ok()) {
    std::cerr << (warm_cache.ok() ? cold_cache.error() : warm_cache.error())
              << "\n";
    return 1;
  }

  struct Phase {
    const char* name;
    const char* spec;
    pipeline::ResultCache* cache;
    double seconds = 0;
    std::size_t prefix_hits = 0;
    std::size_t passes_skipped = 0;
    Snapshot snap;
  };
  Phase phases[] = {{"cold", kPrefixSpec, &warm_cache},
                    {"extension", kExtendedSpec, &warm_cache},
                    {"cold-ext", kExtendedSpec, &cold_cache}};
  for (Phase& phase : phases) {
    pipeline::CompilationDriver driver(ctx);
    driver.set_jobs(jobs);
    driver.set_result_cache(phase.cache);
    driver.set_stage_policy(policy);
    const auto result = driver.compile(module, phase.spec);
    if (!result.ok) {
      std::cerr << phase.name << " compile failed: " << result.error << "\n";
      return 1;
    }
    phase.seconds = result.total_seconds;
    phase.prefix_hits = result.prefix_hits();
    phase.passes_skipped = result.passes_skipped();
    phase.snap = snapshot(result);
  }

  const Phase& ext = phases[1];
  const Phase& cold_ext = phases[2];
  const double speedup =
      cold_ext.seconds / (ext.seconds > 0 ? ext.seconds : 1e-12);
  const double skip_rate =
      static_cast<double>(ext.passes_skipped) /
      static_cast<double>(kPrefixLen * functions);
  const bool ext_identical = identical(ext.snap, cold_ext.snap);

  TextTable table("incremental spec extension — " + std::to_string(functions) +
                  " functions, +schedule over: " + std::string(kPrefixSpec));
  table.set_header(
      {"phase", "wall s", "funcs/sec", "prefix hits", "passes skipped"});
  for (const Phase& phase : phases) {
    table.add_row({phase.name, TextTable::num(phase.seconds, 3),
                   TextTable::num(bench::per_sec(functions, phase.seconds), 1),
                   std::to_string(phase.prefix_hits),
                   std::to_string(phase.passes_skipped)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "extension speedup over cold: " << TextTable::num(speedup, 1)
            << "x, prefix skip rate: " << TextTable::num(skip_rate * 100.0, 1)
            << "%, identical: " << (ext_identical ? "yes" : "NO") << "\n";

  if (!json_path.empty()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"incremental\",\n"
         << "  \"config\": {\n"
         << "    \"functions\": " << functions << ",\n"
         << "    \"jobs\": " << jobs << ",\n"
         << "    \"seed\": " << kSeed << ",\n"
         << "    \"spec\": \"" << json_escape(kPrefixSpec) << "\",\n"
         << "    \"extended_spec\": \"" << json_escape(kExtendedSpec)
         << "\",\n"
         << "    \"cold_seconds\": " << phases[0].seconds << ",\n"
         << "    \"extension_seconds\": " << ext.seconds << ",\n"
         << "    \"cold_ext_seconds\": " << cold_ext.seconds << "\n"
         << "  },\n"
         << "  \"extension_speedup\": " << speedup << ",\n"
         << "  \"prefix_skip_rate\": " << skip_rate << ",\n"
         << "  \"git_sha\": \"" << json_escape(git_sha) << "\"\n"
         << "}\n";
    std::ofstream out(json_path, std::ios::trunc);
    out << json.str();
    if (!out.good()) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }

  if (!ext_identical) {
    std::cerr << "DETERMINISM VIOLATED: extension output differs from a cold "
                 "run of the extended spec\n";
    return 1;
  }
  if (skip_rate < 0.9) {
    std::cerr << "STAGE CACHE INEFFECTIVE: only "
              << TextTable::num(skip_rate * 100.0, 1)
              << "% of prefix passes were skipped (floor: 90%)\n";
    return 1;
  }
  if (speedup < 5.0) {
    std::cerr << "STAGE CACHE TOO SLOW: extension speedup "
              << TextTable::num(speedup, 1) << "x is below the 5x floor\n";
    return 1;
  }
  return 0;
}
