// FIG1 — reproduces the paper's Figure 1: register-file thermal maps for
// three register assignment policies on a register-hungry loop kernel.
//
//   (a) deterministic ordered list  (first_free)  -> hot corner, steep grad
//   (b) random                       (random)     -> scattered hot spots
//   (c) chessboard [2]               (chessboard) -> homogenized map
//
// The paper reports only pictures; we print the maps (ASCII) and the
// quantitative rows (peak, range, stddev, max/mean gradient) that encode
// "who wins". A spread policy and the thermally-guided policy are added
// as the Sec. 4 upgrades.
#include "bench_common.hpp"

#include <iostream>

using namespace tadfa;

int main() {
  bench::Rig rig;

  // A kernel whose loop hammers a modest set of registers — the classic
  // ordered-free-list victim. ~40% register pressure.
  workload::Kernel kernel = workload::make_fir(96, 8);

  const std::vector<std::string> policies{"first_free", "random",
                                          "chessboard", "farthest_spread",
                                          "round_robin"};

  TextTable table("FIG1 — thermal map statistics per assignment policy (" +
                  kernel.name + ", 64-reg 8x8 RF)");
  table.set_header({"policy", "peak degC", "range K", "stddev K",
                    "max grad K", "mean grad K", "regs used", "hotspots"});

  struct MapRow {
    std::string policy;
    std::vector<double> temps;
  };
  std::vector<MapRow> maps;
  double global_min = 1e9;
  double global_max = -1e9;

  for (const std::string& policy : policies) {
    const auto alloc = bench::allocate(rig, kernel.func, policy);
    const auto m = bench::measure(rig, kernel, alloc.func, alloc.assignment);
    if (!m.ok) {
      return 1;
    }
    const thermal::MapStats s = m.replay.final_stats;
    table.add_row({policy, bench::fmt(s.peak_k - 273.15, 2),
                   bench::fmt(s.range_k, 3), bench::fmt(s.stddev_k, 3),
                   bench::fmt(s.max_gradient_k, 3),
                   bench::fmt(s.mean_gradient_k, 3),
                   std::to_string(alloc.assignment.used_physical().size()),
                   std::to_string(
                       thermal::hotspots(rig.fp, m.replay.final_reg_temps)
                           .size())});
    maps.push_back({policy, m.replay.final_reg_temps});
    global_min = std::min(global_min, s.min_k);
    global_max = std::max(global_max, s.peak_k);
  }

  table.print(std::cout);
  std::cout << "\nMaps share one scale so glyphs are comparable across "
               "policies.\n\n";
  for (const MapRow& row : maps) {
    bench::print_map(rig, row.temps, "Fig.1 " + row.policy, global_min,
                     global_max);
    std::cout << '\n';
  }

  // --- Robustness: does the Fig. 1 ordering hold across RF sizes? ----------
  TextTable sizes("FIG1-S — policy ordering vs register file size "
                  "(max gradient K, fir)");
  sizes.set_header({"RF size", "first_free", "random", "chessboard",
                    "farthest_spread"});
  for (const char* size_name : {"16", "64", "128"}) {
    machine::RegisterFileConfig cfg;
    if (std::string(size_name) == "16") {
      cfg = machine::RegisterFileConfig::small_config();
    } else if (std::string(size_name) == "64") {
      cfg = machine::RegisterFileConfig::default_config();
    } else {
      cfg = machine::RegisterFileConfig::large_config();
    }
    bench::Rig local(cfg);
    workload::Kernel k2 = workload::make_fir(96, 8);
    std::vector<std::string> row{size_name};
    for (const char* policy : {"first_free", "random", "chessboard",
                               "farthest_spread"}) {
      const auto alloc = bench::allocate(local, k2.func, policy);
      const auto m = bench::measure(local, k2, alloc.func, alloc.assignment);
      row.push_back(bench::fmt(m.replay.final_stats.max_gradient_k, 3));
    }
    sizes.add_row(row);
  }
  sizes.print(std::cout);
  std::cout << '\n';

  std::cout << "Reading: first_free concentrates accesses on the low "
               "registers (hot corner, steepest gradients); random scatters "
               "them but still clusters; chessboard spreads accesses over "
               "one parity and homogenizes the map — matching Fig. 1(a-c) "
               "of the paper.\n";
  return 0;
}
