// SERVICE THROUGHPUT — the compile server under concurrent clients.
//
// Spins an in-process service::CompileServer on a Unix socket with a
// fresh persistent cache, then drives it with C client threads, each
// submitting its own slice of a mixed module as a stream of requests —
// cold first (every function compiles and is persisted), then warm
// (every function should be restored without running a pass). Reports
// requests/sec and functions/sec for both phases plus the warm hit
// rate, and gates the serving-path determinism guarantee: every
// function served — batched however the dispatcher chose, cold or warm
// — must be byte-identical to a direct CompilationDriver compile of
// the same module (exit 1 otherwise; the CI bench-smoke job runs this).
//
// With --json=PATH the headline numbers are written as the repo's
// service benchmark artifact:
//
//   {"bench": "service_throughput", "config": {...},
//    "requests_per_sec": <warm>, "functions_per_sec": <warm>,
//    "cache_hit_rate": <warm>, "git_sha": ...}
//
//   bench_service_throughput [--functions=N] [--clients=N] [--jobs=N]
//                            [--per-request=N] [--cache-dir=DIR]
//                            [--json=PATH] [--git-sha=SHA] [--csv]
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "ir/printer.hpp"
#include "pipeline/driver.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "support/string_utils.hpp"
#include "workload/modules.hpp"

using namespace tadfa;

namespace {

constexpr const char* kSpec =
    "cse,dce,alloc=linear:first_free,thermal-dfa,"
    "alloc=coloring:coolest_first,schedule";

constexpr std::uint64_t kSeed = 7;

using bench::json_escape;
using bench::per_sec;

struct Phase {
  const char* name;
  double seconds = 0;
  std::size_t requests = 0;
  std::size_t functions = 0;
  std::size_t hits = 0;
  bool ok = true;
  std::string error;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t functions = 96;
  std::size_t clients = 4;
  std::size_t per_request = 4;
  unsigned jobs = 0;  // hardware concurrency
  std::string cache_dir;
  std::string json_path;
  std::string git_sha;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long long n = 0;
    if (starts_with(arg, "--functions=") && parse_int(arg.substr(12), n) &&
        n > 0) {
      functions = static_cast<std::size_t>(n);
    } else if (starts_with(arg, "--clients=") && parse_int(arg.substr(10), n) &&
               n > 0) {
      clients = static_cast<std::size_t>(n);
    } else if (starts_with(arg, "--per-request=") &&
               parse_int(arg.substr(14), n) && n > 0) {
      per_request = static_cast<std::size_t>(n);
    } else if (starts_with(arg, "--jobs=") && parse_int(arg.substr(7), n) &&
               n >= 0) {
      jobs = static_cast<unsigned>(n);
    } else if (starts_with(arg, "--cache-dir=")) {
      cache_dir = arg.substr(12);
    } else if (starts_with(arg, "--json=")) {
      json_path = arg.substr(7);
    } else if (starts_with(arg, "--git-sha=")) {
      git_sha = arg.substr(10);
    } else if (arg == "--csv") {
      csv = true;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--functions=N] [--clients=N] [--per-request=N]"
                   " [--jobs=N] [--cache-dir=DIR] [--json=PATH]"
                   " [--git-sha=SHA] [--csv]\n";
      return 2;
    }
  }
  if (git_sha.empty()) {
    const char* env = std::getenv("GITHUB_SHA");
    git_sha = env != nullptr ? env : "unknown";
  }

  namespace fs = std::filesystem;
  const fs::path root =
      cache_dir.empty() ? fs::temp_directory_path() : fs::path(cache_dir);
  const fs::path dir = root / "tadfa-service-bench-cache";
  const fs::path socket =
      fs::temp_directory_path() /
      ("tadfa-service-bench-" + std::to_string(::getpid()) + ".sock");
  std::error_code ec;
  fs::remove_all(dir, ec);

  workload::ModuleConfig mcfg;
  mcfg.functions = functions;
  mcfg.seed = kSeed;
  const ir::Module module = workload::make_mixed_module(mcfg);

  bench::Rig rig;
  pipeline::PipelineContext ctx;
  ctx.floorplan = &rig.fp;
  ctx.grid = &rig.grid;
  ctx.power = &rig.power;

  // The determinism reference: a direct single-threaded driver compile.
  pipeline::CompilationDriver reference_driver(ctx);
  reference_driver.set_jobs(1);
  const auto reference = reference_driver.compile(module, kSpec);
  if (!reference.ok) {
    std::cerr << "reference compile failed: " << reference.error << "\n";
    return 1;
  }

  service::ServerConfig scfg;
  scfg.socket_path = socket.string();
  scfg.jobs = jobs;
  scfg.default_spec = kSpec;
  scfg.cache_dir = dir.string();
  service::CompileServer server(ctx, scfg);
  if (!server.start()) {
    std::cerr << "server start failed: " << server.error() << "\n";
    return 1;
  }

  // Each client owns an interleaved slice of the module (client c takes
  // functions c, c+C, c+2C, ...) and streams them `per_request` at a
  // time; the module-order reference result for each function is known,
  // so every response can be diffed byte for byte.
  Phase phases[] = {{"cold"}, {"warm"}};
  for (Phase& phase : phases) {
    std::vector<Phase> per_client(clients);
    std::vector<std::thread> pool;
    pool.reserve(clients);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        Phase& mine = per_client[c];
        for (std::size_t base = c; base < module.size();
             base += clients * per_request) {
          service::CompileRequest request;
          request.spec = kSpec;
          std::vector<std::size_t> indices;
          for (std::size_t k = 0; k < per_request; ++k) {
            const std::size_t idx = base + k * clients;
            if (idx >= module.size()) {
              break;
            }
            indices.push_back(idx);
            request.module_text +=
                ir::to_string(module.functions()[idx]) + "\n";
          }
          if (indices.empty()) {
            break;
          }
          std::string error;
          const int fd = service::connect_unix(scfg.socket_path, &error);
          if (fd < 0) {
            mine.ok = false;
            mine.error = error;
            return;
          }
          std::optional<service::CompileResponse> response;
          if (service::write_request(fd, request, &error)) {
            response = service::read_response(fd, &error);
          }
          ::close(fd);
          if (!response.has_value() || !response->ok) {
            mine.ok = false;
            mine.error = response.has_value() ? response->error : error;
            return;
          }
          ++mine.requests;
          mine.functions += response->functions.size();
          mine.hits += response->cache_hits();
          for (std::size_t k = 0; k < indices.size(); ++k) {
            const auto& ref = reference.functions[indices[k]];
            if (response->functions[k].printed !=
                ir::to_string(ref.run.state.func)) {
              mine.ok = false;
              mine.error = "function '" + ref.name +
                           "' served differently than compiled directly";
              return;
            }
          }
        }
      });
    }
    for (std::thread& t : pool) {
      t.join();
    }
    phase.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    for (const Phase& mine : per_client) {
      phase.requests += mine.requests;
      phase.functions += mine.functions;
      phase.hits += mine.hits;
      if (!mine.ok && phase.ok) {
        phase.ok = false;
        phase.error = mine.error;
      }
    }
  }
  server.shutdown();
  fs::remove_all(dir, ec);

  TextTable table("compile service — " + std::to_string(functions) +
                  " functions, " + std::to_string(clients) + " clients");
  table.set_header({"phase", "wall s", "requests", "reqs/sec", "funcs/sec",
                    "hit rate", "identical"});
  for (const Phase& phase : phases) {
    table.add_row(
        {phase.name, bench::fmt(phase.seconds, 3),
         std::to_string(phase.requests),
         bench::fmt(per_sec(phase.requests, phase.seconds), 1),
         bench::fmt(per_sec(phase.functions, phase.seconds), 1),
         bench::fmt(phase.functions == 0
                        ? 0.0
                        : 100.0 * static_cast<double>(phase.hits) /
                              static_cast<double>(phase.functions),
                    1) +
             "%",
         phase.ok ? "yes" : "NO"});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  const Phase& warm = phases[1];
  const double warm_hit_rate =
      warm.functions == 0 ? 0.0
                          : static_cast<double>(warm.hits) /
                                static_cast<double>(warm.functions);
  if (!json_path.empty()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"service_throughput\",\n"
         << "  \"config\": {\n"
         << "    \"functions\": " << functions << ",\n"
         << "    \"clients\": " << clients << ",\n"
         << "    \"per_request\": " << per_request << ",\n"
         << "    \"jobs\": " << jobs << ",\n"
         << "    \"seed\": " << kSeed << ",\n"
         << "    \"spec\": \"" << json_escape(kSpec) << "\",\n"
         << "    \"requests_per_sec_cold\": "
         << per_sec(phases[0].requests, phases[0].seconds) << ",\n"
         << "    \"functions_per_sec_cold\": "
         << per_sec(phases[0].functions, phases[0].seconds) << "\n"
         << "  },\n"
         << "  \"requests_per_sec\": "
         << per_sec(warm.requests, warm.seconds) << ",\n"
         << "  \"functions_per_sec\": "
         << per_sec(warm.functions, warm.seconds) << ",\n"
         << "  \"cache_hit_rate\": " << warm_hit_rate << ",\n"
         << "  \"git_sha\": \"" << json_escape(git_sha) << "\"\n"
         << "}\n";
    std::ofstream out(json_path, std::ios::trunc);
    out << json.str();
    if (!out.good()) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }

  for (const Phase& phase : phases) {
    if (!phase.ok) {
      std::cerr << "DETERMINISM VIOLATED (" << phase.name
                << "): " << phase.error << "\n";
      return 1;
    }
  }
  if (warm_hit_rate < 0.95) {
    std::cerr << "CACHE INEFFECTIVE: warm hit rate "
              << bench::fmt(warm_hit_rate * 100.0, 1)
              << "% is below the 95% floor\n";
    return 1;
  }
  return 0;
}
