// SEC3-G — the granularity trade-off of Sec. 3: "The fidelity of the
// analysis will depend on the granularity of the approximation —
// increasing the number of points would increase accuracy, but at the
// cost of increased computation time."
//
// Sweeps grid points per register cell (1, 4, 9, 16) and reports, per
// kernel: RMSE of per-register exit temperatures vs. the finest grid,
// peak-temperature error, and analysis wall time.
#include "bench_common.hpp"

#include <iostream>

using namespace tadfa;

int main() {
  bench::Rig rig;
  const std::vector<unsigned> subdivisions{1, 2, 3, 4};
  const unsigned finest = 4;

  TextTable table(
      "SEC3-G — granularity (points per cell) vs accuracy vs time");
  table.set_header({"kernel", "points/cell", "nodes", "RMSE vs finest mK",
                    "peak err mK", "analysis ms", "iterations"});

  for (const char* name : {"crc32", "fir", "idct8"}) {
    auto kernel = workload::make_kernel(name);
    const auto alloc = bench::allocate(rig, kernel->func, "first_free");

    // Reference: finest grid.
    const thermal::ThermalGrid fine_grid(rig.fp, finest);
    core::ThermalDfaConfig cfg;
    cfg.delta_k = 0.001;
    cfg.max_iterations = 500;
    const core::ThermalDfa fine_dfa(fine_grid, rig.power, rig.timing, cfg);
    const auto reference =
        fine_dfa.analyze_post_ra(alloc.func, alloc.assignment);

    for (unsigned sub : subdivisions) {
      const thermal::ThermalGrid grid(rig.fp, sub);
      const core::ThermalDfa dfa(grid, rig.power, rig.timing, cfg);
      const auto r = dfa.analyze_post_ra(alloc.func, alloc.assignment);
      const double rmse =
          stats::rmse(r.exit_reg_temps_k, reference.exit_reg_temps_k);
      const double peak_err =
          std::abs(r.exit_stats.peak_k - reference.exit_stats.peak_k);
      table.add_row({name, std::to_string(sub * sub),
                     std::to_string(grid.node_count()),
                     bench::fmt(rmse * 1e3, 3),
                     bench::fmt(peak_err * 1e3, 3),
                     bench::fmt(r.analysis_seconds * 1e3, 2),
                     std::to_string(r.iterations)});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading: error vs the finest grid falls as points/cell "
               "rise while analysis time grows roughly with node count — "
               "the Sec. 3 accuracy/cost dial.\n";
  return 0;
}
