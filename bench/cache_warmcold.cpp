// WARM/COLD — persistent result-cache throughput.
//
// Compiles a mixed module twice through pipeline::CompilationDriver with
// a pipeline::ResultCache attached: once against an empty cache (cold —
// every function runs the full Sec. 4 pipeline and is persisted) and
// again against the populated cache (warm — every function should be
// restored without running a single pass). Reports functions/sec for
// both, the warm hit rate, and re-asserts the cross-process determinism
// guarantee: the warm result must be byte-identical to the cold one at
// --jobs 1 *and* at the configured job count (exit 1 otherwise — the CI
// bench-smoke job gates on that).
//
// With --json=PATH the headline numbers are written as the repo's
// benchmark artifact:
//
//   {"bench": ..., "config": {...}, "functions_per_sec": <warm>,
//    "cache_hit_rate": <warm>, "git_sha": ...}
//
//   bench_cache_warmcold [--functions=N] [--jobs=N] [--cache-dir=DIR]
//                        [--json=PATH] [--git-sha=SHA] [--csv]
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ir/printer.hpp"
#include "pipeline/driver.hpp"
#include "pipeline/result_cache.hpp"
#include "support/string_utils.hpp"
#include "workload/modules.hpp"

using namespace tadfa;

namespace {

// The same Sec. 4 flavor the throughput bench uses: the thermal DFA
// dominates, which is exactly the work a warm cache skips.
constexpr const char* kSpec =
    "cse,dce,alloc=linear:first_free,thermal-dfa,"
    "alloc=coloring:coolest_first,schedule";

constexpr std::uint64_t kSeed = 7;

struct Snapshot {
  std::vector<std::string> printed;
  std::vector<std::uint64_t> fingerprints;
  std::vector<std::uint32_t> spills;
  std::vector<pipeline::PassRunStats> merged;
};

Snapshot snapshot(const pipeline::ModulePipelineResult& result) {
  Snapshot s;
  for (const auto& f : result.functions) {
    s.printed.push_back(ir::to_string(f.run.state.func));
    s.fingerprints.push_back(ir::fingerprint(f.run.state.func));
    s.spills.push_back(f.run.state.spilled_regs);
  }
  s.merged = result.merged_pass_stats();
  return s;
}

/// Byte-identical in every deterministic field (seconds excepted).
bool identical(const Snapshot& a, const Snapshot& b) {
  if (a.printed != b.printed || a.fingerprints != b.fingerprints ||
      a.spills != b.spills || a.merged.size() != b.merged.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.merged.size(); ++i) {
    const auto& x = a.merged[i];
    const auto& y = b.merged[i];
    if (x.name != y.name || x.summary != y.summary ||
        x.changed != y.changed ||
        x.instructions_after != y.instructions_after ||
        x.vregs_after != y.vregs_after) {
      return false;
    }
  }
  return true;
}

double funcs_per_sec(std::size_t functions, double seconds) {
  return bench::per_sec(functions, seconds);
}

using bench::json_escape;

}  // namespace

int main(int argc, char** argv) {
  std::size_t functions = 200;
  unsigned jobs = 0;  // hardware concurrency
  std::string cache_dir;
  std::string json_path;
  std::string git_sha;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long long n = 0;
    if (starts_with(arg, "--functions=") && parse_int(arg.substr(12), n) &&
        n > 0) {
      functions = static_cast<std::size_t>(n);
    } else if (starts_with(arg, "--jobs=") && parse_int(arg.substr(7), n) &&
               n >= 0) {
      jobs = static_cast<unsigned>(n);
    } else if (starts_with(arg, "--cache-dir=")) {
      cache_dir = arg.substr(12);
    } else if (starts_with(arg, "--json=")) {
      json_path = arg.substr(7);
    } else if (starts_with(arg, "--git-sha=")) {
      git_sha = arg.substr(10);
    } else if (arg == "--csv") {
      csv = true;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--functions=N] [--jobs=N] [--cache-dir=DIR]"
                   " [--json=PATH] [--git-sha=SHA] [--csv]\n";
      return 2;
    }
  }
  if (git_sha.empty()) {
    const char* env = std::getenv("GITHUB_SHA");
    git_sha = env != nullptr ? env : "unknown";
  }
  // The bench owns (and wipes) a namespaced subdirectory so a cold run
  // is actually cold — never the caller's directory itself.
  namespace fs = std::filesystem;
  const fs::path root =
      cache_dir.empty() ? fs::temp_directory_path() : fs::path(cache_dir);
  const fs::path dir = root / "tadfa-warmcold-cache";
  std::error_code ec;
  fs::remove_all(dir, ec);

  workload::ModuleConfig mcfg;
  mcfg.functions = functions;
  mcfg.seed = kSeed;
  const ir::Module module = workload::make_mixed_module(mcfg);

  bench::Rig rig;
  pipeline::PipelineContext ctx;
  ctx.floorplan = &rig.fp;
  ctx.grid = &rig.grid;
  ctx.power = &rig.power;

  pipeline::CompilationDriver driver(ctx);
  pipeline::ResultCache cache(dir.string());
  if (!cache.ok()) {
    std::cerr << cache.error() << "\n";
    return 1;
  }
  driver.set_result_cache(&cache);

  struct Phase {
    const char* name;
    unsigned jobs;
    double seconds = 0;
    double hit_rate = 0;
    Snapshot snap;
    bool identical = true;
  };
  // Cold populates the cache; the warm runs must reproduce it exactly,
  // single-threaded and parallel.
  Phase phases[] = {{"cold", jobs}, {"warm", 1}, {"warm", jobs}};
  for (Phase& phase : phases) {
    driver.set_jobs(phase.jobs);
    const auto result = driver.compile(module, kSpec);
    if (!result.ok) {
      std::cerr << phase.name << " compile failed: " << result.error << "\n";
      return 1;
    }
    phase.seconds = result.total_seconds;
    phase.hit_rate = result.cache_hit_rate();
    phase.snap = snapshot(result);
    phase.identical = identical(phase.snap, phases[0].snap);
  }

  TextTable table("warm/cold result cache — " + std::to_string(functions) +
                  " functions, spec: " + std::string(kSpec));
  table.set_header(
      {"phase", "jobs", "wall s", "funcs/sec", "hit rate", "identical"});
  bool all_identical = true;
  for (const Phase& phase : phases) {
    table.add_row({phase.name, std::to_string(phase.jobs),
                   TextTable::num(phase.seconds, 3),
                   TextTable::num(funcs_per_sec(functions, phase.seconds), 1),
                   TextTable::num(phase.hit_rate * 100.0, 1) + "%",
                   phase.identical ? "yes" : "NO"});
    all_identical = all_identical && phase.identical;
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "warm speedup over cold: "
            << TextTable::num(
                   phases[0].seconds /
                       (phases[2].seconds > 0 ? phases[2].seconds : 1e-12),
                   1)
            << "x\n";

  const Phase& warm = phases[2];
  if (!json_path.empty()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"cache_warmcold\",\n"
         << "  \"config\": {\n"
         << "    \"functions\": " << functions << ",\n"
         << "    \"jobs\": " << warm.jobs << ",\n"
         << "    \"seed\": " << kSeed << ",\n"
         << "    \"spec\": \"" << json_escape(kSpec) << "\",\n"
         << "    \"functions_per_sec_cold\": "
         << funcs_per_sec(functions, phases[0].seconds) << ",\n"
         << "    \"functions_per_sec_warm_serial\": "
         << funcs_per_sec(functions, phases[1].seconds) << "\n"
         << "  },\n"
         << "  \"functions_per_sec\": "
         << funcs_per_sec(functions, warm.seconds) << ",\n"
         << "  \"cache_hit_rate\": " << warm.hit_rate << ",\n"
         << "  \"git_sha\": \"" << json_escape(git_sha) << "\"\n"
         << "}\n";
    std::ofstream out(json_path, std::ios::trunc);
    out << json.str();
    if (!out.good()) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }

  if (!all_identical) {
    std::cerr << "DETERMINISM VIOLATED: warm output differs from cold\n";
    return 1;
  }
  if (warm.hit_rate < 0.95) {
    std::cerr << "CACHE INEFFECTIVE: warm hit rate "
              << TextTable::num(warm.hit_rate * 100.0, 1)
              << "% is below the 95% floor\n";
    return 1;
  }
  return 0;
}
