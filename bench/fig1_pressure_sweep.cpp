// FIG1-P — the paper's chessboard caveat, quantified: "The chessboard
// policy, however, only works if the program only uses half of the
// registers in the RF. Indeed, if register pressure is high, then all
// registers will be used ... thermal gradients may still appear."
//
// Workload: hot_cold — a few hammered registers plus a dial of long-lived
// cold values that sets register pressure without flattening the power
// profile. Swept from ~15% to ~95% of the 64-register file.
//
// Per policy we report the measured peak and max gradient, plus two
// structural metrics that expose the caveat directly:
//   hot adjacency  — number of physically adjacent pairs among the five
//                    hottest cells (chessboard keeps this 0 while parity
//                    survives);
//   parity kept    — whether the chessboard stayed on one parity.
#include "bench_common.hpp"

#include <iostream>

using namespace tadfa;

namespace {

int hot_adjacent_pairs(const machine::Floorplan& fp,
                       const std::vector<double>& access_counts) {
  // Adjacency among the five most-ACCESSED cells (power sources), not the
  // five hottest (diffusion blurs those into a blob).
  const auto hot = stats::top_k_indices(access_counts, 5);
  int pairs = 0;
  for (std::size_t a = 0; a < hot.size(); ++a) {
    for (std::size_t b = a + 1; b < hot.size(); ++b) {
      if (fp.grid_distance(static_cast<machine::PhysReg>(hot[a]),
                           static_cast<machine::PhysReg>(hot[b])) == 1) {
        ++pairs;
      }
    }
  }
  return pairs;
}

}  // namespace

int main() {
  bench::Rig rig;
  const std::vector<int> cold_counts{4, 12, 20, 28, 36, 44, 52};
  const std::vector<std::string> policies{"first_free", "chessboard",
                                          "farthest_spread"};

  TextTable table(
      "FIG1-P — chessboard caveat: pressure sweep (hot_cold kernel, "
      "4 hot + N cold values, 64-reg RF)");
  std::vector<std::string> header{"live values", "pressure %"};
  for (const auto& p : policies) {
    header.push_back(p + " peak");
    header.push_back(p + " grad");
    header.push_back(p + " hotadj");
  }
  header.push_back("parity kept?");
  table.set_header(header);

  for (int cold : cold_counts) {
    workload::Kernel kernel = workload::make_hot_cold(192, 4, cold);
    const int live = 4 + cold + 2;  // hot + cold + loop counter/limit
    std::vector<std::string> row{
        std::to_string(live),
        bench::fmt(100.0 * live / rig.fp.num_registers(), 0)};
    bool parity_kept = true;
    for (const std::string& policy : policies) {
      const auto alloc = bench::allocate(rig, kernel.func, policy);
      const auto m =
          bench::measure(rig, kernel, alloc.func, alloc.assignment);
      if (!m.ok) {
        return 1;
      }
      row.push_back(bench::fmt(m.replay.final_stats.peak_k - 273.15, 2));
      row.push_back(bench::fmt(m.replay.final_stats.max_gradient_k, 3));
      row.push_back(
          std::to_string(hot_adjacent_pairs(rig.fp, m.access_counts)));
      if (policy == "chessboard") {
        for (machine::PhysReg p : alloc.assignment.used_physical()) {
          if ((rig.fp.row_of(p) + rig.fp.col_of(p)) % 2 != 0) {
            parity_kept = false;
          }
        }
      }
    }
    row.push_back(parity_kept ? "yes" : "NO");
    table.add_row(row);
  }

  table.print(std::cout);
  std::cout
      << "\nReading: while pressure stays under half the file the "
         "chessboard keeps the hot cells non-adjacent (hotadj 0) and its "
         "gradients track farthest_spread; past ~50% the parity breaks, "
         "hot cells become adjacent again, and its gradient advantage "
         "over first_free erodes — the Sec. 2 caveat.\n";
  return 0;
}
