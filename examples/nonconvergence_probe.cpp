// Non-convergence probe: demonstrates the paper's diagnostic use of the
// analysis — "if the analysis does not converge after a reasonable number
// of iterations, this suggests that the thermal state of the program may
// be too difficult to predict at compile time".
//
// Generates random programs of rising size/heat, runs the DFA under a
// fixed iteration budget with tightening δ, and shows where convergence
// is lost and how relaxing δ (or raising the budget) recovers it.
//
//   ./nonconvergence_probe [iteration_budget]
#include <iostream>

#include "core/thermal_dfa.hpp"
#include "regalloc/linear_scan.hpp"
#include "regalloc/policy.hpp"
#include "support/table.hpp"
#include "workload/random_program.hpp"

using namespace tadfa;

int main(int argc, char** argv) {
  const int budget = argc > 1 ? std::atoi(argv[1]) : 40;

  const machine::Floorplan fp(machine::RegisterFileConfig::default_config());
  const thermal::ThermalGrid grid(fp);
  const power::PowerModel power(fp.config());
  const machine::TimingModel timing;

  TextTable table("non-convergence probe (iteration budget " +
                  std::to_string(budget) + ")");
  table.set_header({"program size", "delta K", "iterations", "converged",
                    "final delta K", "verdict"});

  for (int size : {60, 120, 240, 480}) {
    workload::RandomProgramConfig pcfg;
    pcfg.seed = 13;
    pcfg.target_instructions = size;
    pcfg.irregularity = 0.8;
    const ir::Function f = workload::random_program(pcfg);
    regalloc::FirstFreePolicy policy;
    regalloc::LinearScanAllocator alloc_engine(fp, policy);
    const auto alloc = alloc_engine.allocate(f);

    for (double delta : {0.1, 0.01, 0.001}) {
      core::ThermalDfaConfig cfg;
      cfg.delta_k = delta;
      cfg.max_iterations = budget;
      const core::ThermalDfa dfa(grid, power, timing, cfg);
      const auto r = dfa.analyze_post_ra(alloc.func, alloc.assignment);
      const std::string verdict =
          r.converged ? "predictable"
                      : "re-optimize or relax delta (paper Sec. 4)";
      table.add_row({std::to_string(size), TextTable::num(delta, 3),
                     std::to_string(r.iterations),
                     r.converged ? "yes" : "NO",
                     TextTable::num(r.final_delta_k, 5), verdict});
    }
  }
  table.print(std::cout);

  std::cout << "\nThe delta history of the last run shows how the gap "
               "shrinks each pass; a plateau above delta means the budget, "
               "not the program, is the binding constraint.\n";
  return 0;
}
