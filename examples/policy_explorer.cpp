// Policy explorer: pick a kernel and an assignment policy on the command
// line; see the trace-simulated (ground truth) map next to the DFA's
// compile-time prediction.
//
//   ./policy_explorer [kernel] [policy]
//   ./policy_explorer crc32 chessboard
//
// Kernels: vecsum fir matmul idct8 crc32 stencil3 poly7 accumulators counter
// Policies: first_free random chessboard round_robin farthest_spread
//           coolest_first
#include <iostream>

#include "core/thermal_dfa.hpp"
#include "regalloc/linear_scan.hpp"
#include "regalloc/policy.hpp"
#include "sim/interpreter.hpp"
#include "sim/thermal_replay.hpp"
#include "support/heatmap.hpp"
#include "support/statistics.hpp"
#include "workload/kernels.hpp"

using namespace tadfa;

int main(int argc, char** argv) {
  const std::string kernel_name = argc > 1 ? argv[1] : "crc32";
  const std::string policy_name = argc > 2 ? argv[2] : "first_free";

  auto kernel = workload::make_kernel(kernel_name);
  if (!kernel) {
    std::cerr << "unknown kernel '" << kernel_name << "'\n";
    return 1;
  }
  auto policy = regalloc::make_policy(policy_name);
  if (!policy) {
    std::cerr << "unknown policy '" << policy_name << "'\n";
    return 1;
  }

  const machine::Floorplan fp(machine::RegisterFileConfig::default_config());
  regalloc::LinearScanAllocator allocator(fp, *policy);
  const auto alloc = allocator.allocate(kernel->func);

  const thermal::ThermalGrid grid(fp);
  const power::PowerModel power(fp.config());
  const machine::TimingModel timing;

  // Ground truth: execute, trace, replay to thermal steady state.
  sim::Interpreter interp(alloc.func, timing);
  if (kernel->init_memory) {
    kernel->init_memory(interp.memory());
  }
  power::AccessTrace trace(fp.num_registers());
  const auto run =
      interp.run_traced(kernel->default_args, alloc.assignment, trace);
  if (!run.ok()) {
    std::cerr << "kernel trapped: " << run.trap.value_or("?") << "\n";
    return 1;
  }
  const sim::ThermalReplay replay(grid, power);
  sim::ReplayConfig rcfg;
  rcfg.max_repeats = 60;
  const auto truth = replay.replay(trace, rcfg);

  // Prediction: thermal DFA with profiled frequencies.
  core::ThermalDfa dfa(grid, power, timing);
  dfa.set_block_profile(
      std::vector<double>(run.block_visits.begin(), run.block_visits.end()));
  const auto predicted = dfa.analyze_post_ra(alloc.func, alloc.assignment);

  std::cout << "kernel=" << kernel_name << "  policy=" << policy_name
            << "  cycles=" << run.cycles
            << "  spills=" << alloc.spilled_regs << "\n\n";

  auto to_c = [](const std::vector<double>& ks) {
    std::vector<double> cs(ks.size());
    for (std::size_t i = 0; i < ks.size(); ++i) {
      cs[i] = ks[i] - 273.15;
    }
    return cs;
  };
  const auto truth_c = to_c(truth.final_reg_temps);
  const auto pred_c = to_c(predicted.exit_reg_temps_k);

  HeatmapOptions opt;
  opt.scale_min = std::min(stats::min(truth_c), stats::min(pred_c));
  opt.scale_max = std::max(stats::max(truth_c), stats::max(pred_c));
  render_heatmap_pair(std::cout, truth_c, pred_c, fp.rows(), fp.cols(),
                      "simulated (ground truth)", "DFA prediction", opt);

  std::cout << "\nsimulated: peak=" << truth.final_stats.peak_k - 273.15
            << " degC  max_grad=" << truth.final_stats.max_gradient_k
            << " K\npredicted: peak="
            << predicted.exit_stats.peak_k - 273.15
            << " degC  max_grad=" << predicted.exit_stats.max_gradient_k
            << " K\nrmse=" << stats::rmse(predicted.exit_reg_temps_k,
                                          truth.final_reg_temps)
            << " K  pearson="
            << stats::pearson(predicted.exit_reg_temps_k,
                              truth.final_reg_temps)
            << "  dfa_iterations=" << predicted.iterations
            << (predicted.converged ? "" : " (NOT converged)") << "\n";
  return 0;
}
