// Full thermal-aware compilation pipeline (the paper's Sec. 4 story):
//
//   1. allocate with the performance-oriented ordered free list,
//   2. run the thermal DFA, rank critical variables,
//   3. split the hottest variable's live range, spill the runner-up,
//   4. re-allocate coolest-first using the predicted heat map,
//   5. thermally schedule each block,
//   6. verify semantics and report measured before/after thermal metrics.
//
//   ./thermal_pipeline [kernel]
#include <iostream>

#include "core/critical.hpp"
#include "core/thermal_dfa.hpp"
#include "opt/schedule.hpp"
#include "opt/spill_critical.hpp"
#include "opt/split.hpp"
#include "regalloc/graph_coloring.hpp"
#include "regalloc/linear_scan.hpp"
#include "regalloc/policy.hpp"
#include "sim/interpreter.hpp"
#include "sim/thermal_replay.hpp"
#include "support/heatmap.hpp"
#include "workload/kernels.hpp"

using namespace tadfa;

namespace {

struct Measured {
  thermal::MapStats stats;
  std::vector<double> temps;
  std::uint64_t cycles = 0;
  std::int64_t result = 0;
};

Measured measure(const machine::Floorplan& fp, const workload::Kernel& k,
                 const ir::Function& func,
                 const machine::RegisterAssignment& assignment) {
  const machine::TimingModel timing;
  sim::Interpreter interp(func, timing);
  if (k.init_memory) {
    k.init_memory(interp.memory());
  }
  power::AccessTrace trace(fp.num_registers());
  const auto run = interp.run_traced(k.default_args, assignment, trace);
  if (!run.ok()) {
    std::cerr << "trap: " << run.trap.value_or("?") << "\n";
    std::exit(1);
  }
  const thermal::ThermalGrid grid(fp);
  const power::PowerModel power(fp.config());
  const sim::ThermalReplay replay(grid, power);
  sim::ReplayConfig cfg;
  cfg.max_repeats = 60;
  const auto r = replay.replay(trace, cfg);
  return {r.final_stats, r.final_reg_temps, run.cycles,
          run.return_value.value_or(0)};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string kernel_name = argc > 1 ? argv[1] : "crc32";
  auto kernel = workload::make_kernel(kernel_name);
  if (!kernel) {
    std::cerr << "unknown kernel '" << kernel_name << "'\n";
    return 1;
  }

  const machine::Floorplan fp(machine::RegisterFileConfig::default_config());
  const thermal::ThermalGrid grid(fp);
  const power::PowerModel power(fp.config());
  const machine::TimingModel timing;
  const core::ThermalDfa dfa(grid, power, timing);

  // 1. Baseline allocation.
  regalloc::FirstFreePolicy first_free;
  regalloc::LinearScanAllocator alloc0(fp, first_free);
  const auto baseline = alloc0.allocate(kernel->func);
  const Measured before = measure(fp, *kernel, baseline.func,
                                  baseline.assignment);

  // 2. Analyze + rank.
  const auto analysis = dfa.analyze_post_ra(baseline.func,
                                            baseline.assignment);
  const core::ExactAssignmentModel model(baseline.func, fp,
                                         baseline.assignment);
  auto ranking = core::rank_critical_variables(baseline.func, model,
                                               analysis, grid, timing);
  std::cout << "thermal DFA: " << analysis.iterations << " iterations, "
            << (analysis.converged ? "converged" : "NOT converged")
            << "; predicted peak "
            << analysis.exit_stats.peak_k - 273.15 << " degC\n";
  std::cout << "critical variables:";
  for (std::size_t i = 0; i < std::min<std::size_t>(3, ranking.size());
       ++i) {
    std::cout << " %" << ranking[i].vreg;
  }
  std::cout << "\n\n";

  // 3. Split hottest, spill runner-up.
  ir::Function working = kernel->func;
  if (!ranking.empty()) {
    opt::split_live_range(working, ranking.front().vreg);
  }
  if (ranking.size() > 1) {
    working = opt::spill_critical_variables(working, {ranking[1]}, 1).func;
  }

  // 4. Coolest-first re-allocation with the predicted map.
  regalloc::CoolestFirstPolicy coolest;
  regalloc::GraphColoringAllocator alloc1(fp, coolest);
  alloc1.set_heat_scores(analysis.exit_reg_temps_k);
  const auto improved = alloc1.allocate(working);

  // 5. Thermal scheduling.
  const auto scheduled = opt::thermal_schedule(improved.func,
                                               improved.assignment);
  const Measured after = measure(fp, *kernel, scheduled.func,
                                 improved.assignment);

  // 6. Report.
  if (before.result != after.result) {
    std::cerr << "SEMANTICS BROKEN: " << before.result << " vs "
              << after.result << "\n";
    return 1;
  }
  std::cout << "semantics preserved (result " << before.result << ")\n\n";

  auto to_c = [](std::vector<double> v) {
    for (double& t : v) {
      t -= 273.15;
    }
    return v;
  };
  HeatmapOptions opt;
  opt.scale_min = std::min(before.stats.min_k, after.stats.min_k) - 273.15;
  opt.scale_max = std::max(before.stats.peak_k, after.stats.peak_k) - 273.15;
  render_heatmap_pair(std::cout, to_c(before.temps), to_c(after.temps),
                      fp.rows(), fp.cols(), "before (first_free)",
                      "after (thermal-aware)", opt);

  std::cout << "\n                 before      after\n"
            << "peak degC      " << before.stats.peak_k - 273.15 << "   "
            << after.stats.peak_k - 273.15 << "\n"
            << "max grad K     " << before.stats.max_gradient_k << "   "
            << after.stats.max_gradient_k << "\n"
            << "stddev K       " << before.stats.stddev_k << "   "
            << after.stats.stddev_k << "\n"
            << "cycles         " << before.cycles << "   " << after.cycles
            << "\n";
  return 0;
}
