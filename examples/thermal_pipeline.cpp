// Full thermal-aware compilation pipeline (the paper's Sec. 4 story),
// expressed as one declarative spec run by pipeline::PassManager:
//
//   1. allocate with the performance-oriented ordered free list,
//   2. run the thermal DFA, rank critical variables,
//   3. split the hottest variable's live range, spill the runner-up,
//   4. re-allocate coolest-first using the predicted heat map,
//   5. thermally schedule each block,
//   6. verify semantics and report measured before/after thermal metrics.
//
//   ./thermal_pipeline [kernel]
#include <iostream>

#include "pipeline/pass_manager.hpp"
#include "power/access_trace.hpp"
#include "sim/interpreter.hpp"
#include "sim/thermal_replay.hpp"
#include "support/heatmap.hpp"
#include "workload/kernels.hpp"

using namespace tadfa;

namespace {

constexpr const char* kBaselineSpec = "alloc=linear:first_free";
constexpr const char* kThermalSpec =
    "alloc=linear:first_free,thermal-dfa,split-hot=1,spill-critical=1,"
    "alloc=coloring:coolest_first,schedule";

struct Measured {
  thermal::MapStats stats;
  std::vector<double> temps;
  std::uint64_t cycles = 0;
  std::int64_t result = 0;
};

Measured measure(const machine::Floorplan& fp, const workload::Kernel& k,
                 const ir::Function& func,
                 const machine::RegisterAssignment& assignment) {
  const machine::TimingModel timing;
  sim::Interpreter interp(func, timing);
  if (k.init_memory) {
    k.init_memory(interp.memory());
  }
  power::AccessTrace trace(fp.num_registers());
  const auto run = interp.run_traced(k.default_args, assignment, trace);
  if (!run.ok()) {
    std::cerr << "trap: " << run.trap.value_or("?") << "\n";
    std::exit(1);
  }
  const thermal::ThermalGrid grid(fp);
  const power::PowerModel power(fp.config());
  const sim::ThermalReplay replay(grid, power);
  sim::ReplayConfig cfg;
  cfg.max_repeats = 60;
  const auto r = replay.replay(trace, cfg);
  return {r.final_stats, r.final_reg_temps, run.cycles,
          run.return_value.value_or(0)};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string kernel_name = argc > 1 ? argv[1] : "crc32";
  auto kernel = workload::make_kernel(kernel_name);
  if (!kernel) {
    std::cerr << "unknown kernel '" << kernel_name << "'\n";
    return 1;
  }

  const machine::Floorplan fp(machine::RegisterFileConfig::default_config());
  const thermal::ThermalGrid grid(fp);
  const power::PowerModel power(fp.config());

  pipeline::PipelineContext ctx;
  ctx.floorplan = &fp;
  ctx.grid = &grid;
  ctx.power = &power;
  const pipeline::PassManager manager(ctx);

  // Baseline and thermal-aware flows, both spec-driven.
  const auto base_run = manager.run(kernel->func, kBaselineSpec);
  if (!base_run.ok) {
    std::cerr << "baseline pipeline failed: " << base_run.error << "\n";
    return 1;
  }
  const auto thermal_run = manager.run(kernel->func, kThermalSpec);
  if (!thermal_run.ok) {
    std::cerr << "thermal pipeline failed: " << thermal_run.error << "\n";
    return 1;
  }

  std::cout << "spec: " << kThermalSpec << "\n\n";
  pipeline::PassManager::stats_table(thermal_run, "per-pass statistics")
      .print(std::cout);
  std::cout << '\n';

  const Measured before = measure(fp, *kernel, base_run.state.func,
                                  *base_run.state.assignment());
  const Measured after = measure(fp, *kernel, thermal_run.state.func,
                                 *thermal_run.state.assignment());

  if (before.result != after.result) {
    std::cerr << "SEMANTICS BROKEN: " << before.result << " vs "
              << after.result << "\n";
    return 1;
  }
  std::cout << "semantics preserved (result " << before.result << ")\n\n";

  auto to_c = [](std::vector<double> v) {
    for (double& t : v) {
      t -= 273.15;
    }
    return v;
  };
  HeatmapOptions opt;
  opt.scale_min = std::min(before.stats.min_k, after.stats.min_k) - 273.15;
  opt.scale_max = std::max(before.stats.peak_k, after.stats.peak_k) - 273.15;
  render_heatmap_pair(std::cout, to_c(before.temps), to_c(after.temps),
                      fp.rows(), fp.cols(), "before (first_free)",
                      "after (thermal-aware)", opt);

  std::cout << "\n                 before      after\n"
            << "peak degC      " << before.stats.peak_k - 273.15 << "   "
            << after.stats.peak_k - 273.15 << "\n"
            << "max grad K     " << before.stats.max_gradient_k << "   "
            << after.stats.max_gradient_k << "\n"
            << "stddev K       " << before.stats.stddev_k << "   "
            << after.stats.stddev_k << "\n"
            << "cycles         " << before.cycles << "   " << after.cycles
            << "\n";
  return 0;
}
