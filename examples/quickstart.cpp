// Quickstart: build a small function with IRBuilder, allocate registers,
// run the thermal data flow analysis, and print the predicted heat map
// plus the hotspot / critical-variable report.
//
//   ./quickstart
#include <iostream>

#include "core/critical.hpp"
#include "core/thermal_dfa.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "regalloc/linear_scan.hpp"
#include "regalloc/policy.hpp"
#include "support/heatmap.hpp"

using namespace tadfa;
using B = ir::IRBuilder;

int main() {
  // --- 1. Build a function: sum of squares 0..n-1 -------------------------
  ir::Function func("sum_of_squares");
  ir::IRBuilder b(func);
  const ir::Reg n = func.add_param();

  const auto entry = b.create_block("entry");
  const auto head = b.create_block("head");
  const auto body = b.create_block("body");
  const auto exit = b.create_block("exit");

  b.set_insert_point(entry);
  const ir::Reg sum = b.const_int(0);
  const ir::Reg i = b.const_int(0);
  b.jmp(head);

  b.set_insert_point(head);
  const ir::Reg cond = b.cmp(ir::Opcode::kCmpLt, B::r(i), B::r(n));
  b.br(cond, body, exit);

  b.set_insert_point(body);
  const ir::Reg sq = b.mul(B::r(i), B::r(i));
  b.assign(ir::Opcode::kAdd, sum, B::r(sum), B::r(sq));
  b.assign(ir::Opcode::kAdd, i, B::r(i), B::i(1));
  b.jmp(head);

  b.set_insert_point(exit);
  b.ret(B::r(sum));

  std::cout << "=== IR ===\n" << ir::to_string(func) << "\n";

  // --- 2. Allocate registers (the compiler's ordered free list) -----------
  const machine::Floorplan fp(machine::RegisterFileConfig::default_config());
  regalloc::FirstFreePolicy policy;
  regalloc::LinearScanAllocator allocator(fp, policy);
  const auto alloc = allocator.allocate(func);
  std::cout << "allocated " << alloc.assignment.used_physical().size()
            << " physical registers, " << alloc.spilled_regs << " spills\n\n";

  // --- 3. Thermal data flow analysis (Fig. 2 of the paper) ----------------
  const thermal::ThermalGrid grid(fp);
  const power::PowerModel power(fp.config());
  const machine::TimingModel timing;
  const core::ThermalDfa dfa(grid, power, timing);
  const auto result = dfa.analyze_post_ra(alloc.func, alloc.assignment);

  std::cout << "=== Thermal DFA ===\n"
            << "converged: " << (result.converged ? "yes" : "NO")
            << " after " << result.iterations << " iterations (delta="
            << dfa.config().delta_k << " K)\n"
            << "predicted peak: " << result.exit_stats.peak_k - 273.15
            << " degC, max gradient: " << result.exit_stats.max_gradient_k
            << " K\n\n";

  std::vector<double> celsius(result.exit_reg_temps_k.size());
  for (std::size_t r = 0; r < celsius.size(); ++r) {
    celsius[r] = result.exit_reg_temps_k[r] - 273.15;
  }
  std::cout << "predicted register-file map (degC):\n";
  render_heatmap(std::cout, celsius, fp.rows(), fp.cols());

  // --- 4. Which variables matter? ------------------------------------------
  const core::ExactAssignmentModel model(alloc.func, fp, alloc.assignment);
  const auto ranking = core::rank_critical_variables(alloc.func, model,
                                                     result, grid, timing);
  std::cout << "\ntop critical variables (spill/split candidates):\n";
  for (std::size_t k = 0; k < std::min<std::size_t>(3, ranking.size()); ++k) {
    const auto& cv = ranking[k];
    std::cout << "  %" << cv.vreg << "  score=" << cv.score
              << "  weighted accesses=" << cv.weighted_accesses
              << "  cell temp=" << cv.expected_cell_temp_k - 273.15
              << " degC\n";
  }
  return 0;
}
