// File-driven analyzer: the library as a command-line tool. Reads a
// module in the canonical IR text format, and for every function runs the
// full pipeline: allocate -> thermal DFA -> heat map -> critical
// variables -> hot program points.
//
//   ./analyze_file examples/sample.tir [policy] [delta_k]
//   ./analyze_file examples/sample.tir chessboard 0.001
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/critical.hpp"
#include "core/thermal_dfa.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "regalloc/linear_scan.hpp"
#include "regalloc/policy.hpp"
#include "support/heatmap.hpp"
#include "support/string_utils.hpp"

using namespace tadfa;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <file.tir> [policy] [delta_k]\n";
    return 2;
  }
  const std::string policy_name = argc > 2 ? argv[2] : "first_free";
  double delta = 0.01;
  if (argc > 3 && !parse_double(argv[3], delta)) {
    std::cerr << "bad delta '" << argv[3] << "'\n";
    return 2;
  }

  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "cannot open " << argv[1] << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  ir::ParseError error;
  auto module = ir::parse_module(buffer.str(), &error);
  if (!module) {
    std::cerr << argv[1] << ":" << error.line << ": " << error.message
              << "\n";
    return 1;
  }

  const machine::Floorplan fp(machine::RegisterFileConfig::default_config());
  const thermal::ThermalGrid grid(fp);
  const power::PowerModel power(fp.config());
  const machine::TimingModel timing;
  core::ThermalDfaConfig cfg;
  cfg.delta_k = delta;
  cfg.max_iterations = 500;
  const core::ThermalDfa dfa(grid, power, timing, cfg);

  auto policy = regalloc::make_policy(policy_name);
  if (!policy) {
    std::cerr << "unknown policy '" << policy_name << "'\n";
    return 2;
  }

  for (const ir::Function& func : module->functions()) {
    std::cout << "=== @" << func.name() << " ("
              << func.instruction_count() << " instructions, "
              << func.block_count() << " blocks) ===\n";
    const auto issues = ir::verify(func);
    if (!issues.empty()) {
      for (const auto& issue : issues) {
        std::cerr << "  verify: " << issue.message << "\n";
      }
      continue;
    }

    regalloc::LinearScanAllocator allocator(fp, *policy);
    const auto alloc = allocator.allocate(func);
    std::cout << "allocation: "
              << alloc.assignment.used_physical().size()
              << " registers used, " << alloc.spilled_regs << " spilled ("
              << policy_name << ")\n";

    const auto result = dfa.analyze_post_ra(alloc.func, alloc.assignment);
    std::cout << "thermal DFA: "
              << (result.converged ? "converged" : "DID NOT CONVERGE")
              << " in " << result.iterations << " iterations (delta="
              << delta << " K, " << result.analysis_seconds * 1e3
              << " ms)\n"
              << "predicted peak " << result.exit_stats.peak_k - 273.15
              << " degC, max gradient " << result.exit_stats.max_gradient_k
              << " K\n";

    std::vector<double> celsius(result.exit_reg_temps_k.size());
    for (std::size_t r = 0; r < celsius.size(); ++r) {
      celsius[r] = result.exit_reg_temps_k[r] - 273.15;
    }
    render_heatmap(std::cout, celsius, fp.rows(), fp.cols());

    const core::ExactAssignmentModel model(alloc.func, fp, alloc.assignment);
    const auto ranking = core::rank_critical_variables(alloc.func, model,
                                                       result, grid, timing);
    std::cout << "critical variables:";
    for (std::size_t i = 0; i < std::min<std::size_t>(5, ranking.size());
         ++i) {
      std::cout << " %" << ranking[i].vreg;
    }
    const auto hot = core::hot_program_points(result, 0.5);
    std::cout << "\nhot program points: " << hot.size() << " of "
              << result.per_instruction.size() << " instructions\n\n";
  }
  return 0;
}
