#!/usr/bin/env python3
"""Docs lint: intra-repo link integrity plus CLI flag-table drift.

Two checks, both stdlib-only:

1. Every relative markdown link in README.md and docs/*.md must point
   at a file that exists in the repo. External links (with a scheme),
   pure anchors, and links that resolve outside the repo root (GitHub
   web paths like the CI badge) are skipped.

2. The flag tables in docs/OPERATIONS.md must match the binary's own
   --help output, per subcommand and in both directions: a flag added
   to the CLI without a table row fails, and so does a table row for a
   flag the CLI no longer has.

Usage: tools/check_docs.py [--tadfa PATH] [--skip-flags]
"""

import argparse
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# OPERATIONS.md section heading -> argv tail whose --help defines it.
SECTIONS = {
    "`tadfa` (compile mode)": [],
    "`tadfa serve`": ["serve"],
    "`tadfa route`": ["route"],
    "`tadfa client`": ["client"],
}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# A flag *definition* line in --help output: indented, flag first.
HELP_FLAG_RE = re.compile(r"\s+(--[a-zA-Z][a-zA-Z0-9-]*)")
# A flag-table row in the docs: "| `--flag...` | meaning |".
TABLE_FLAG_RE = re.compile(r"\|\s*`(--[a-zA-Z][a-zA-Z0-9-]*)")


def check_links(errors):
    for md in [REPO / "README.md"] + sorted((REPO / "docs").rglob("*.md")):
        for lineno, line in enumerate(md.read_text().splitlines(), 1):
            for target in LINK_RE.findall(line):
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # scheme
                    continue
                if target.startswith("#"):
                    continue
                path = target.split("#")[0]
                resolved = (md.parent / path).resolve()
                if not resolved.is_relative_to(REPO):
                    continue  # GitHub web path (e.g. the CI badge)
                if not resolved.exists():
                    errors.append(
                        f"{md.relative_to(REPO)}:{lineno}: broken link "
                        f"'{target}'"
                    )


def help_flags(tadfa, subcommand):
    out = subprocess.run(
        [str(tadfa)] + subcommand + ["--help"],
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    flags = set()
    for line in out.splitlines():
        if line.startswith("usage:") or line.lstrip().startswith("./"):
            continue  # synopsis lines mention other subcommands' flags
        m = HELP_FLAG_RE.match(line)
        if m:
            flags.add(m.group(1))
    return flags


def documented_flags():
    """Flags per OPERATIONS.md section, from its table rows."""
    sections = {}
    current = None
    for line in (REPO / "docs/OPERATIONS.md").read_text().splitlines():
        if line.startswith("## "):
            title = line[3:].strip()
            current = title if title in SECTIONS else None
            sections.setdefault(current, set())
        m = TABLE_FLAG_RE.match(line)
        if m and current is not None:
            sections[current].add(m.group(1))
    return sections


def check_flags(tadfa, errors):
    docs = documented_flags()
    for title, subcommand in SECTIONS.items():
        if title not in docs:
            errors.append(f"docs/OPERATIONS.md: missing section '## {title}'")
            continue
        actual = help_flags(tadfa, subcommand)
        name = " ".join(["tadfa"] + subcommand) or "tadfa"
        for flag in sorted(actual - docs[title]):
            errors.append(
                f"docs/OPERATIONS.md: '{name} --help' defines {flag} "
                f"but the '{title}' table has no row for it"
            )
        for flag in sorted(docs[title] - actual):
            errors.append(
                f"docs/OPERATIONS.md: '{title}' table documents {flag} "
                f"but '{name} --help' does not define it"
            )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--tadfa",
        default=str(REPO / "build/tadfa"),
        help="tadfa binary to read --help from (default: build/tadfa)",
    )
    ap.add_argument(
        "--skip-flags",
        action="store_true",
        help="only check links (no built binary needed)",
    )
    args = ap.parse_args()

    errors = []
    check_links(errors)
    if not args.skip_flags:
        tadfa = Path(args.tadfa)
        if not tadfa.exists():
            errors.append(f"tadfa binary not found at {tadfa}")
        else:
            check_flags(tadfa, errors)

    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    if errors:
        print(f"{len(errors)} docs error(s)", file=sys.stderr)
        return 1
    print("docs OK: links resolve, flag tables match --help")
    return 0


if __name__ == "__main__":
    sys.exit(main())
