// tadfa — the pipeline as a command-line tool.
//
// Parses named kernels and/or IR text files, runs a spec-string pipeline,
// and reports per-pass statistics. A single-function input additionally
// measures the thermal effect (trace -> replay) against a baseline
// pipeline; multiple inputs (or a multi-function .tir file) are compiled
// as one module through the multi-threaded pipeline::CompilationDriver.
//
//   tadfa crc32
//   tadfa --pipeline="cse,dce,alloc=linear:farthest_spread" fir
//   tadfa --pipeline="alloc=linear:first_free,thermal-dfa,nops=3" my.tir
//   tadfa --jobs=8 crc32 fir matmul suite.tir
//   tadfa --list-passes
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "pipeline/driver.hpp"
#include "pipeline/pass_manager.hpp"
#include "pipeline/result_cache.hpp"
#include "power/access_trace.hpp"
#include "sim/interpreter.hpp"
#include "sim/thermal_replay.hpp"
#include "support/heatmap.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"
#include "workload/kernels.hpp"

using namespace tadfa;

namespace {

// The paper's Sec. 4 flow, end to end.
constexpr const char* kDefaultPipeline =
    "alloc=linear:first_free,thermal-dfa,split-hot=1,spill-critical=1,"
    "alloc=coloring:coolest_first,schedule";
constexpr const char* kDefaultBaseline = "alloc=linear:first_free";

struct Options {
  std::string pipeline = kDefaultPipeline;
  std::string baseline = kDefaultBaseline;
  std::vector<std::string> inputs;
  std::vector<std::int64_t> args;
  bool args_given = false;
  double delta_k = 0.01;
  int max_iterations = 100;
  std::uint64_t seed = 42;
  unsigned jobs = 0;  // 0 = hardware_concurrency
  bool verify = true;
  bool maps = true;
  bool csv = false;
  bool analysis_stats = false;
  bool analysis_cache = true;
  std::string cache_dir;
  bool cache_stats = false;
  bool cache_verify = false;
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options] <kernel-name | file.tir>...\n"
      << "  --pipeline=SPEC   pass pipeline (default: the Sec. 4 flow)\n"
      << "  --baseline=SPEC   comparison pipeline (default "
      << kDefaultBaseline << "; 'none' disables)\n"
      << "  --args=N,N,...    kernel arguments (default: the kernel's own)\n"
      << "  --delta=K         thermal-DFA convergence threshold\n"
      << "  --max-iters=N     thermal-DFA iteration cap\n"
      << "  --seed=N          assignment-policy seed\n"
      << "  --jobs=N          compile module functions on N worker threads\n"
      << "                    (default: hardware concurrency; several inputs\n"
      << "                    or a multi-function file form one module)\n"
      << "  --no-verify       disable between-pass verifier checkpoints\n"
      << "  --no-map          skip the heatmaps\n"
      << "  --csv             emit tables as CSV\n"
      << "  --analysis-stats  dump per-analysis cache hits/misses after the "
         "run\n"
      << "  --no-analysis-cache  rebuild analyses on every request (A/B "
         "baseline)\n"
      << "  --cache-dir=DIR   persistent result cache for module compiles\n"
      << "  --cache-stats     dump result-cache hit/miss/evict counters\n"
      << "  --cache-verify    recompile one cached hit and diff it against\n"
      << "                    the cache (exit 1 on mismatch)\n"
      << "  --list-passes     available passes\n"
      << "  --list-kernels    available kernels\n";
  return 2;
}

struct Measured {
  thermal::MapStats stats;
  std::vector<double> temps_k;
  std::uint64_t cycles = 0;
  std::optional<std::int64_t> result;
  bool ok = false;
  std::string trap;
};

Measured measure(const machine::Floorplan& fp,
                 const pipeline::PipelineState& state,
                 const std::vector<std::int64_t>& args,
                 const std::function<void(std::vector<std::int64_t>&)>& init) {
  Measured m;
  const machine::TimingModel timing;
  sim::Interpreter interp(state.func, timing);
  if (init) {
    init(interp.memory());
  }
  power::AccessTrace trace(fp.num_registers());
  const auto run = interp.run_traced(args, *state.assignment(), trace);
  if (!run.ok()) {
    m.trap = run.trap.value_or("?");
    return m;
  }
  const thermal::ThermalGrid grid(fp);
  const power::PowerModel power(fp.config());
  const sim::ThermalReplay replay(grid, power);
  sim::ReplayConfig cfg;
  cfg.max_repeats = 60;
  if (state.gating() != nullptr) {
    cfg.gated_banks = state.gating()->gated;
  }
  const auto r = replay.replay(trace, cfg);
  m.stats = r.final_stats;
  m.temps_k = r.final_reg_temps;
  m.cycles = run.cycles;
  m.result = run.return_value;
  m.ok = true;
  return m;
}

void print_table(const TextTable& table, bool csv) {
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& prefix) -> std::optional<std::string> {
      if (starts_with(arg, prefix)) {
        return arg.substr(prefix.size());
      }
      return std::nullopt;
    };
    if (arg == "--list-passes") {
      TextTable table("available passes");
      table.set_header({"pass", "description"});
      for (const auto& entry : pipeline::default_registry().entries()) {
        table.add_row({entry.name, entry.help});
      }
      table.print(std::cout);
      return 0;
    }
    if (arg == "--list-kernels") {
      for (const auto& kernel : workload::standard_suite()) {
        std::cout << kernel.name << '\n';
      }
      return 0;
    }
    if (arg == "--no-verify") {
      opt.verify = false;
    } else if (arg == "--analysis-stats") {
      opt.analysis_stats = true;
    } else if (arg == "--no-analysis-cache") {
      opt.analysis_cache = false;
    } else if (arg == "--cache-stats") {
      opt.cache_stats = true;
    } else if (arg == "--cache-verify") {
      opt.cache_verify = true;
    } else if (auto v = value("--cache-dir=")) {
      opt.cache_dir = *v;
    } else if (arg == "--no-map") {
      opt.maps = false;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (auto v = value("--pipeline=")) {
      opt.pipeline = *v;
    } else if (auto v = value("--baseline=")) {
      opt.baseline = *v;
    } else if (auto v = value("--args=")) {
      opt.args.clear();
      opt.args_given = true;
      for (const std::string& field : split(*v, ',')) {
        long long n = 0;
        if (!parse_int(trim(field), n)) {
          std::cerr << "bad --args value '" << field << "'\n";
          return 2;
        }
        opt.args.push_back(n);
      }
    } else if (auto v = value("--delta=")) {
      if (!parse_double(*v, opt.delta_k)) {
        return usage(argv[0]);
      }
    } else if (auto v = value("--max-iters=")) {
      long long n = 0;
      if (!parse_int(*v, n) || n < 1) {
        return usage(argv[0]);
      }
      opt.max_iterations = static_cast<int>(n);
    } else if (auto v = value("--seed=")) {
      long long n = 0;
      if (!parse_int(*v, n) || n < 0) {
        return usage(argv[0]);
      }
      opt.seed = static_cast<std::uint64_t>(n);
    } else if (auto v = value("--jobs=")) {
      long long n = 0;
      if (!parse_int(*v, n) || n < 0) {
        return usage(argv[0]);
      }
      opt.jobs = static_cast<unsigned>(n);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      opt.inputs.push_back(arg);
    }
  }
  if (opt.inputs.empty()) {
    return usage(argv[0]);
  }

  // Resolve every input — named kernel first, IR file second — into one
  // module. A single-kernel invocation keeps the kernel's run metadata
  // (args, memory init, expected result) for the measurement path.
  ir::Module module;
  workload::Kernel kernel;
  bool have_kernel_meta = false;
  for (const std::string& input : opt.inputs) {
    if (auto named = workload::make_kernel(input)) {
      if (!have_kernel_meta) {
        kernel = *named;
        have_kernel_meta = true;
      }
      module.add_function(std::move(named->func));
      continue;
    }
    std::ifstream in(input);
    if (!in) {
      std::cerr << "'" << input
                << "' is neither a known kernel nor a readable file "
                   "(--list-kernels shows the kernels)\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ir::ParseError error;
    auto parsed = ir::parse_module(buffer.str(), &error);
    if (!parsed) {
      std::cerr << input << ":" << error.line << ": " << error.message
                << "\n";
      return 1;
    }
    for (ir::Function& f : parsed->functions()) {
      module.add_function(std::move(f));
    }
  }
  if (module.empty()) {
    std::cerr << "no functions to compile\n";
    return 1;
  }
  if (const auto issues = ir::verify(module); !issues.empty()) {
    std::cerr << "input module is malformed: " << issues.front().message
              << "\n";
    return 1;
  }
  const bool single = module.size() == 1;
  if (single && !have_kernel_meta) {
    kernel.name = module.functions().front().name();
    kernel.func = module.functions().front();
  }
  if (opt.args_given) {
    kernel.default_args = opt.args;
  }

  const machine::Floorplan fp(machine::RegisterFileConfig::default_config());
  const thermal::ThermalGrid grid(fp);
  const power::PowerModel power(fp.config());

  pipeline::PipelineContext ctx;
  ctx.floorplan = &fp;
  ctx.grid = &grid;
  ctx.power = &power;
  ctx.dfa_config.delta_k = opt.delta_k;
  ctx.dfa_config.max_iterations = opt.max_iterations;
  ctx.policy_seed = opt.seed;

  // Module mode: several inputs (or a multi-function file) go through the
  // multi-threaded driver; measurement/heatmaps are per-function concerns
  // and stay with the single-function path below.
  if (!single) {
    pipeline::CompilationDriver driver(ctx);
    driver.set_jobs(opt.jobs);
    driver.set_checkpoints(opt.verify);
    driver.set_analysis_caching(opt.analysis_cache);
    std::optional<pipeline::ResultCache> cache;
    if (!opt.cache_dir.empty()) {
      cache.emplace(opt.cache_dir);
      if (!cache->ok()) {
        std::cerr << cache->error() << "\n";
        return 1;
      }
      driver.set_result_cache(&*cache);
    } else if (opt.cache_stats || opt.cache_verify) {
      std::cerr << "--cache-stats/--cache-verify need --cache-dir=DIR\n";
      return 2;
    }
    const auto mod_run = driver.compile(module, opt.pipeline);
    if (mod_run.functions.empty()) {
      // Nothing compiled (spec rejected up front).
      std::cerr << "module compilation failed: " << mod_run.error << "\n";
      return 1;
    }
    print_table(mod_run.function_table("module — " +
                                       std::to_string(module.size()) +
                                       " functions, jobs=" +
                                       std::to_string(mod_run.jobs)),
                opt.csv);
    print_table(mod_run.stats_table("pipeline '" + opt.pipeline + "'"),
                opt.csv);
    if (opt.analysis_stats) {
      TextTable table("analysis cache (module)");
      table.set_header({"analysis", "hits", "misses", "puts", "invalidations"});
      for (const auto& s : mod_run.merged_analysis_stats()) {
        table.add_row({s.name, std::to_string(s.hits),
                       std::to_string(s.misses), std::to_string(s.puts),
                       std::to_string(s.invalidations)});
      }
      print_table(table, opt.csv);
    }
    if (opt.cache_stats && cache.has_value()) {
      print_table(cache->stats_table("result cache (" + opt.cache_dir + ")"),
                  opt.csv);
      std::cout << "module cache hits: " << mod_run.cache_hits() << "/"
                << mod_run.functions.size() << " ("
                << TextTable::num(mod_run.cache_hit_rate() * 100.0, 1)
                << "%)\n";
    }
    if (!mod_run.ok) {
      std::cerr << "module compilation failed: " << mod_run.error << "\n";
      return 1;
    }
    if (opt.cache_verify && cache.has_value()) {
      // Deterministic sample: the first function restored from the
      // cache is recompiled from scratch and diffed field by field
      // against what the cache returned.
      const pipeline::FunctionCompileResult* hit = nullptr;
      const ir::Function* input = nullptr;
      for (std::size_t i = 0; i < mod_run.functions.size(); ++i) {
        if (mod_run.functions[i].from_cache) {
          hit = &mod_run.functions[i];
          input = &module.functions()[i];
          break;
        }
      }
      if (hit == nullptr) {
        std::cout << "cache-verify: no cached hit in this run (cold cache)\n";
      } else {
        pipeline::PassManager manager(ctx);
        manager.set_checkpoints(opt.verify);
        manager.set_analysis_caching(opt.analysis_cache);
        const auto fresh = manager.run(*input, opt.pipeline);
        std::string mismatch;
        if (!fresh.ok) {
          mismatch = "recompile failed: " + fresh.error;
        } else if (ir::to_string(fresh.state.func) !=
                   ir::to_string(hit->run.state.func)) {
          mismatch = "printed IR differs";
        } else if (ir::fingerprint(fresh.state.func) !=
                   ir::fingerprint(hit->run.state.func)) {
          mismatch = "fingerprint differs";
        } else if (fresh.state.spilled_regs != hit->run.state.spilled_regs) {
          mismatch = "spill count differs";
        } else if (fresh.pass_stats.size() != hit->run.pass_stats.size()) {
          mismatch = "pass count differs";
        } else {
          for (std::size_t p = 0; p < fresh.pass_stats.size(); ++p) {
            const auto& a = fresh.pass_stats[p];
            const auto& b = hit->run.pass_stats[p];
            if (a.name != b.name || a.summary != b.summary ||
                a.changed != b.changed ||
                a.instructions_after != b.instructions_after ||
                a.vregs_after != b.vregs_after) {
              mismatch = "pass '" + a.name + "' statistics differ";
              break;
            }
          }
        }
        if (!mismatch.empty()) {
          std::cerr << "cache-verify FAILED on '" << hit->name
                    << "': " << mismatch << "\n";
          return 1;
        }
        std::cout << "cache-verify: '" << hit->name
                  << "' matches a fresh recompile\n";
      }
    }
    std::cout << "compiled " << module.size() << " functions in "
              << TextTable::num(mod_run.total_seconds * 1e3, 1) << " ms ("
              << TextTable::num(
                     static_cast<double>(module.size()) /
                         (mod_run.total_seconds > 0 ? mod_run.total_seconds
                                                    : 1e-12),
                     1)
              << " functions/sec on " << mod_run.jobs << " threads)\n";
    return 0;
  }

  if (!opt.cache_dir.empty() || opt.cache_stats || opt.cache_verify) {
    std::cerr << "note: the result cache applies to module compiles; a "
                 "single input uses the measurement path (pass several "
                 "inputs or a multi-function .tir)\n";
  }

  pipeline::PassManager manager(ctx);
  manager.set_checkpoints(opt.verify);
  manager.set_analysis_caching(opt.analysis_cache);

  const auto run = manager.run(kernel.func, opt.pipeline);
  if (!run.ok) {
    std::cerr << "pipeline failed: " << run.error << "\n";
    return 1;
  }
  print_table(pipeline::PassManager::stats_table(
                  run, "pipeline '" + opt.pipeline + "' on " + kernel.name),
              opt.csv);
  if (opt.analysis_stats) {
    print_table(run.state.analyses.stats_table("analysis cache"), opt.csv);
  }

  if (!run.state.has_assignment()) {
    std::cout << "(no assignment produced; add an alloc= pass to measure "
                 "thermal effect)\n";
    return 0;
  }

  const Measured after =
      measure(fp, run.state, kernel.default_args, kernel.init_memory);
  if (!after.ok) {
    std::cerr << "pipeline output trapped: " << after.trap << "\n";
    return 1;
  }

  std::optional<Measured> before;
  if (opt.baseline != "none") {
    const auto base_run = manager.run(kernel.func, opt.baseline);
    if (!base_run.ok) {
      std::cerr << "baseline pipeline failed: " << base_run.error << "\n";
      return 1;
    }
    if (base_run.state.has_assignment()) {
      before =
          measure(fp, base_run.state, kernel.default_args, kernel.init_memory);
      if (!before->ok) {
        std::cerr << "baseline output trapped: " << before->trap << "\n";
        return 1;
      }
      if (before->result != after.result) {
        std::cerr << "SEMANTICS BROKEN: baseline returned "
                  << before->result.value_or(0) << ", pipeline returned "
                  << after.result.value_or(0) << "\n";
        return 1;
      }
    }
  }
  if (kernel.expected_result.has_value() &&
      after.result != kernel.expected_result) {
    std::cerr << "SEMANTICS BROKEN: expected " << *kernel.expected_result
              << ", got " << after.result.value_or(0) << "\n";
    return 1;
  }

  auto to_c = [](std::vector<double> v) {
    for (double& t : v) {
      t -= 273.15;
    }
    return v;
  };
  if (opt.maps && before.has_value()) {
    HeatmapOptions hm;
    hm.scale_min = std::min(before->stats.min_k, after.stats.min_k) - 273.15;
    hm.scale_max = std::max(before->stats.peak_k, after.stats.peak_k) - 273.15;
    render_heatmap_pair(std::cout, to_c(before->temps_k), to_c(after.temps_k),
                        fp.rows(), fp.cols(), "baseline", "pipeline", hm);
    std::cout << '\n';
  } else if (opt.maps) {
    render_heatmap(std::cout, to_c(after.temps_k), fp.rows(), fp.cols());
    std::cout << '\n';
  }

  TextTable table("measured steady state — " + kernel.name);
  table.set_header({"pipeline", "peak degC", "range K", "stddev K",
                    "max grad K", "cycles", "result"});
  auto row = [&](const std::string& name, const Measured& m) {
    table.add_row({name, TextTable::num(m.stats.peak_k - 273.15, 2),
                   TextTable::num(m.stats.range_k, 3),
                   TextTable::num(m.stats.stddev_k, 3),
                   TextTable::num(m.stats.max_gradient_k, 3),
                   std::to_string(m.cycles),
                   std::to_string(m.result.value_or(0))});
  };
  if (before.has_value()) {
    row(opt.baseline, *before);
  }
  row(opt.pipeline, after);
  print_table(table, opt.csv);
  return 0;
}
