// tadfa — the pipeline as a command-line tool.
//
// Parses named kernels and/or IR text files, runs a spec-string pipeline,
// and reports per-pass statistics. A single-function input additionally
// measures the thermal effect (trace -> replay) against a baseline
// pipeline; multiple inputs (or a multi-function .tir file) are compiled
// as one module through the multi-threaded pipeline::CompilationDriver.
//
//   tadfa crc32
//   tadfa --pipeline="cse,dce,alloc=linear:farthest_spread" fir
//   tadfa --pipeline="alloc=linear:first_free,thermal-dfa,nops=3" my.tir
//   tadfa --jobs=8 crc32 fir matmul suite.tir
//   tadfa --frontend=texpr --machine=dense45 prog.texpr
//   tadfa serve --socket=/tmp/tadfa.sock --cache-dir=/var/cache/tadfa
//   tadfa serve --tcp=127.0.0.1:7411 --max-queue=64
//   tadfa route --socket=/tmp/router.sock --shard=unix:/tmp/s0.sock \
//       --shard=tcp:127.0.0.1:7411
//   tadfa client --socket=/tmp/tadfa.sock crc32 fir my.tir
//   tadfa --list-passes
#include <algorithm>
#include <csignal>
#include <ctime>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "frontend/frontend.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "machine/machine_config.hpp"
#include "pipeline/driver.hpp"
#include "pipeline/pass_manager.hpp"
#include "pipeline/result_cache.hpp"
#include "pipeline/rig.hpp"
#include "power/access_trace.hpp"
#include "service/protocol.hpp"
#include "service/router.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"
#include "sim/interpreter.hpp"
#include "sim/thermal_replay.hpp"
#include "support/heatmap.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"
#include "workload/kernels.hpp"

using namespace tadfa;

namespace {

// The paper's Sec. 4 flow, end to end.
constexpr const char* kDefaultPipeline =
    "alloc=linear:first_free,thermal-dfa,split-hot=1,spill-critical=1,"
    "alloc=coloring:coolest_first,schedule";
constexpr const char* kDefaultBaseline = "alloc=linear:first_free";

struct Options {
  std::string pipeline = kDefaultPipeline;
  std::string baseline = kDefaultBaseline;
  std::vector<std::string> inputs;
  std::vector<std::int64_t> args;
  bool args_given = false;
  double delta_k = 0.01;
  int max_iterations = 100;
  std::uint64_t seed = 42;
  unsigned jobs = 0;  // 0 = hardware_concurrency
  bool verify = true;
  bool maps = true;
  bool csv = false;
  bool analysis_stats = false;
  bool analysis_cache = true;
  std::string cache_dir;
  bool cache_stats = false;
  bool cache_verify = false;
  bool incremental = false;
  bool edit_aware = false;
  bool explain_invalidation = false;
  unsigned stage_every = 0;
  unsigned subdivision = 1;
  bool strict_math = false;
  /// Empty = auto-detect per input (kernel name, .texpr extension, else
  /// .tir); a named frontend parses every input.
  std::string frontend;
  std::string machine = "default";
};

void print_frontends() {
  TextTable table("available frontends");
  table.set_header({"frontend", "description"});
  for (const auto& fe : frontend::default_frontend_registry().entries()) {
    table.add_row({fe->name(), fe->describe()});
  }
  table.print(std::cout);
}

void print_machines() {
  TextTable table("available machines");
  table.set_header({"machine", "registers", "banks", "description"});
  for (const machine::MachineConfig& mc :
       machine::default_machine_registry().entries()) {
    table.add_row({mc.name, std::to_string(mc.rf.num_registers),
                   std::to_string(mc.rf.banks), mc.description});
  }
  table.print(std::cout);
}

void print_usage(std::ostream& os, const char* argv0) {
  os
      << "usage: " << argv0 << " [options] <kernel-name | file.tir>...\n"
      << "       " << argv0
      << " serve  [--socket=PATH] [--tcp=HOST:PORT] [serve options]\n"
      << "       " << argv0
      << " route  [--socket=PATH] [--tcp=HOST:PORT] --shard=ADDR...\n"
      << "       " << argv0
      << " client (--socket=PATH | --tcp=HOST:PORT) [client options] "
         "<kernel-name | file.tir>...\n"
      << "  --pipeline=SPEC   pass pipeline (default: the Sec. 4 flow)\n"
      << "  --baseline=SPEC   comparison pipeline (default "
      << kDefaultBaseline << "; 'none' disables)\n"
      << "  --frontend=NAME   parse every input with a named frontend\n"
      << "                    (default: auto-detect — kernel name, .texpr\n"
      << "                    extension, else .tir)\n"
      << "  --machine=NAME    named machine config to compile for\n"
      << "                    (default 'default'; --list-machines)\n"
      << "  --args=N,N,...    kernel arguments (default: the kernel's own)\n"
      << "  --delta=K         thermal-DFA convergence threshold\n"
      << "  --max-iters=N     thermal-DFA iteration cap\n"
      << "  --subdivision=N   thermal grid points per cell edge (default 1)\n"
      << "  --strict-math     force the bit-identical reference thermal\n"
      << "                    kernel (disables the SIMD fast path; cached\n"
      << "                    under its own ResultCache key)\n"
      << "  --seed=N          assignment-policy seed\n"
      << "  --jobs=N          compile module functions on N worker threads\n"
      << "                    (default: hardware concurrency; several inputs\n"
      << "                    or a multi-function file form one module)\n"
      << "  --no-verify       disable between-pass verifier checkpoints\n"
      << "  --no-map          skip the heatmaps\n"
      << "  --csv             emit tables as CSV\n"
      << "  --analysis-stats  dump per-analysis cache hits/misses after the "
         "run\n"
      << "  --no-analysis-cache  rebuild analyses on every request (A/B "
         "baseline)\n"
      << "  --cache-dir=DIR   persistent result cache for module compiles\n"
      << "  --cache-stats     dump result-cache hit/miss/evict counters\n"
      << "  --incremental     resume module compiles from cached pass-boundary\n"
      << "                    snapshots (needs --cache-dir)\n"
      << "  --stage-every=N   also snapshot after every N-th pass\n"
      << "                    (implies --incremental)\n"
      << "  --cache-verify    recompile one cached hit and diff it against\n"
      << "                    the cache (exit 1 on mismatch)\n"
      << "  --edit-aware      diff the module against its cached dependency\n"
      << "                    graph; only edited functions and their\n"
      << "                    transitive dependents recompile (needs\n"
      << "                    --cache-dir)\n"
      << "  --explain-invalidation  print why each function was (or was not)\n"
      << "                    invalidated, with the dependency path walked\n"
      << "                    (implies --edit-aware)\n"
      << "  --list-passes     available passes\n"
      << "  --list-kernels    available kernels\n"
      << "  --list-frontends  available frontends\n"
      << "  --list-machines   available machine configs\n"
      << "  --help            print this help and exit\n";
}

int usage(const char* argv0) {
  print_usage(std::cerr, argv0);
  return 2;
}

struct Measured {
  thermal::MapStats stats;
  std::vector<double> temps_k;
  std::uint64_t cycles = 0;
  std::optional<std::int64_t> result;
  bool ok = false;
  std::string trap;
};

Measured measure(const machine::Floorplan& fp,
                 const pipeline::PipelineState& state,
                 const std::vector<std::int64_t>& args,
                 const std::function<void(std::vector<std::int64_t>&)>& init) {
  Measured m;
  const machine::TimingModel timing;
  sim::Interpreter interp(state.func, timing);
  if (init) {
    init(interp.memory());
  }
  power::AccessTrace trace(fp.num_registers());
  const auto run = interp.run_traced(args, *state.assignment(), trace);
  if (!run.ok()) {
    m.trap = run.trap.value_or("?");
    return m;
  }
  const thermal::ThermalGrid grid(fp);
  const power::PowerModel power(fp.config());
  const sim::ThermalReplay replay(grid, power);
  sim::ReplayConfig cfg;
  cfg.max_repeats = 60;
  if (state.gating() != nullptr) {
    cfg.gated_banks = state.gating()->gated;
  }
  const auto r = replay.replay(trace, cfg);
  m.stats = r.final_stats;
  m.temps_k = r.final_reg_temps;
  m.cycles = run.cycles;
  m.result = run.return_value;
  m.ok = true;
  return m;
}

void print_table(const TextTable& table, bool csv) {
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << '\n';
}

/// The original one-shot compile path (no subcommand).
int run_compile(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& prefix) -> std::optional<std::string> {
      if (starts_with(arg, prefix)) {
        return arg.substr(prefix.size());
      }
      return std::nullopt;
    };
    if (arg == "--help") {
      print_usage(std::cout, argv[0]);
      return 0;
    }
    if (arg == "--list-passes") {
      TextTable table("available passes");
      table.set_header({"pass", "description"});
      for (const auto& entry : pipeline::default_registry().entries()) {
        table.add_row({entry.name, entry.help});
      }
      table.print(std::cout);
      return 0;
    }
    if (arg == "--list-kernels") {
      for (const auto& kernel : workload::standard_suite()) {
        std::cout << kernel.name << '\n';
      }
      return 0;
    }
    if (arg == "--list-frontends") {
      print_frontends();
      return 0;
    }
    if (arg == "--list-machines") {
      print_machines();
      return 0;
    }
    if (arg == "--no-verify") {
      opt.verify = false;
    } else if (arg == "--analysis-stats") {
      opt.analysis_stats = true;
    } else if (arg == "--no-analysis-cache") {
      opt.analysis_cache = false;
    } else if (arg == "--cache-stats") {
      opt.cache_stats = true;
    } else if (arg == "--cache-verify") {
      opt.cache_verify = true;
    } else if (auto v = value("--cache-dir=")) {
      opt.cache_dir = *v;
    } else if (arg == "--incremental") {
      opt.incremental = true;
    } else if (arg == "--edit-aware") {
      opt.edit_aware = true;
    } else if (arg == "--explain-invalidation") {
      opt.edit_aware = true;
      opt.explain_invalidation = true;
    } else if (auto v = value("--stage-every=")) {
      long long n = 0;
      if (!parse_int(*v, n) || n < 1) {
        return usage(argv[0]);
      }
      opt.incremental = true;
      opt.stage_every = static_cast<unsigned>(n);
    } else if (arg == "--no-map") {
      opt.maps = false;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (auto v = value("--pipeline=")) {
      opt.pipeline = *v;
    } else if (auto v = value("--baseline=")) {
      opt.baseline = *v;
    } else if (auto v = value("--frontend=")) {
      opt.frontend = *v;
    } else if (auto v = value("--machine=")) {
      opt.machine = *v;
    } else if (auto v = value("--args=")) {
      opt.args.clear();
      opt.args_given = true;
      for (const std::string& field : split(*v, ',')) {
        long long n = 0;
        if (!parse_int(trim(field), n)) {
          std::cerr << "bad --args value '" << field << "'\n";
          return 2;
        }
        opt.args.push_back(n);
      }
    } else if (auto v = value("--delta=")) {
      if (!parse_double(*v, opt.delta_k)) {
        return usage(argv[0]);
      }
    } else if (auto v = value("--max-iters=")) {
      long long n = 0;
      if (!parse_int(*v, n) || n < 1) {
        return usage(argv[0]);
      }
      opt.max_iterations = static_cast<int>(n);
    } else if (auto v = value("--seed=")) {
      long long n = 0;
      if (!parse_int(*v, n) || n < 0) {
        return usage(argv[0]);
      }
      opt.seed = static_cast<std::uint64_t>(n);
    } else if (auto v = value("--jobs=")) {
      long long n = 0;
      if (!parse_int(*v, n) || n < 0) {
        return usage(argv[0]);
      }
      opt.jobs = static_cast<unsigned>(n);
    } else if (auto v = value("--subdivision=")) {
      long long n = 0;
      if (!parse_int(*v, n) || n < 1) {
        return usage(argv[0]);
      }
      opt.subdivision = static_cast<unsigned>(n);
    } else if (arg == "--strict-math") {
      opt.strict_math = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      opt.inputs.push_back(arg);
    }
  }
  if (opt.inputs.empty()) {
    return usage(argv[0]);
  }

  const frontend::Frontend* forced = nullptr;
  if (!opt.frontend.empty()) {
    forced = frontend::find_frontend(opt.frontend);
    if (forced == nullptr) {
      std::cerr << "unknown frontend '" << opt.frontend
                << "' (--list-frontends shows them)\n";
      return 2;
    }
  }

  // Resolve every input — named kernel first, source file second — into
  // one module. A single-kernel invocation keeps the kernel's run
  // metadata (args, memory init, expected result) for the measurement
  // path. Without --frontend, each file picks its frontend by extension
  // (.texpr, else .tir); with it, the named frontend parses everything,
  // and a non-file token is handed to the frontend as source text (how
  // `--frontend=kernels "mixed:functions=8"` works).
  ir::Module module;
  workload::Kernel kernel;
  bool have_kernel_meta = false;
  for (const std::string& input : opt.inputs) {
    if (forced == nullptr) {
      if (auto named = workload::make_kernel(input)) {
        if (!have_kernel_meta) {
          kernel = *named;
          have_kernel_meta = true;
        }
        module.add_function(std::move(named->func));
        continue;
      }
    }
    std::string source;
    bool from_file = false;
    {
      std::ifstream in(input);
      if (in) {
        std::ostringstream buffer;
        buffer << in.rdbuf();
        source = buffer.str();
        from_file = true;
      }
    }
    const frontend::Frontend* fe = forced;
    if (fe == nullptr) {
      if (!from_file) {
        std::cerr << "'" << input
                  << "' is neither a known kernel nor a readable file "
                     "(--list-kernels shows the kernels)\n";
        return 1;
      }
      fe = frontend::find_frontend(ends_with(input, ".texpr") ? "texpr"
                                                              : "tir");
    } else if (!from_file) {
      source = input;
    }
    frontend::ParseResult parsed = fe->parse(source);
    if (!parsed.ok()) {
      std::cerr << input << ": " << parsed.diagnostics_text() << "\n";
      return 1;
    }
    for (ir::Function& f : parsed.module->functions()) {
      module.add_function(std::move(f));
    }
    for (const ir::ModuleReference& r : parsed.module->references()) {
      module.add_reference(r.from, r.to);
    }
  }
  if (module.empty()) {
    std::cerr << "no functions to compile\n";
    return 1;
  }
  if (const auto issues = ir::verify(module); !issues.empty()) {
    std::cerr << "input module is malformed: " << issues.front().message
              << "\n";
    return 1;
  }
  const bool single = module.size() == 1;
  if (single && !have_kernel_meta) {
    kernel.name = module.functions().front().name();
    kernel.func = module.functions().front();
  }
  if (opt.args_given) {
    kernel.default_args = opt.args;
  }

  const machine::MachineConfig* mc = machine::find_machine(opt.machine);
  if (mc == nullptr) {
    std::cerr << "unknown machine '" << opt.machine
              << "' (--list-machines shows them)\n";
    return 2;
  }
  pipeline::RigOptions rig_options;
  rig_options.subdivision = opt.subdivision;
  rig_options.dfa_config.delta_k = opt.delta_k;
  rig_options.dfa_config.max_iterations = opt.max_iterations;
  rig_options.dfa_config.strict_math = opt.strict_math;
  rig_options.policy_seed = opt.seed;
  const pipeline::CompileRig rig(*mc, rig_options);
  const machine::Floorplan& fp = rig.floorplan();
  pipeline::PipelineContext ctx = rig.context();

  // Module mode: several inputs (or a multi-function file) go through the
  // multi-threaded driver; measurement/heatmaps are per-function concerns
  // and stay with the single-function path below.
  if (!single) {
    pipeline::CompilationDriver driver(ctx);
    driver.set_jobs(opt.jobs);
    driver.set_checkpoints(opt.verify);
    driver.set_analysis_caching(opt.analysis_cache);
    std::optional<pipeline::ResultCache> cache;
    if (!opt.cache_dir.empty()) {
      cache.emplace(opt.cache_dir);
      if (!cache->ok()) {
        std::cerr << cache->error() << "\n";
        return 1;
      }
      driver.set_result_cache(&*cache);
      if (opt.incremental) {
        pipeline::StagePolicy policy;
        policy.enabled = true;
        policy.every_k = opt.stage_every;
        driver.set_stage_policy(policy);
      }
      driver.set_edit_aware(opt.edit_aware);
    } else if (opt.cache_stats || opt.cache_verify) {
      std::cerr << "--cache-stats/--cache-verify need --cache-dir=DIR\n";
      return 2;
    } else if (opt.incremental) {
      std::cerr << "--incremental needs --cache-dir=DIR\n";
      return 2;
    } else if (opt.edit_aware) {
      std::cerr << "--edit-aware/--explain-invalidation need "
                   "--cache-dir=DIR\n";
      return 2;
    }
    const auto mod_run = driver.compile(module, opt.pipeline);
    if (mod_run.functions.empty()) {
      // Nothing compiled (spec rejected up front).
      std::cerr << "module compilation failed: " << mod_run.error << "\n";
      return 1;
    }
    print_table(mod_run.function_table("module — " +
                                       std::to_string(module.size()) +
                                       " functions, jobs=" +
                                       std::to_string(mod_run.jobs)),
                opt.csv);
    print_table(mod_run.stats_table("pipeline '" + opt.pipeline + "'"),
                opt.csv);
    if (opt.edit_aware) {
      if (mod_run.graph_degraded) {
        std::cout << "edit-aware: cached dependency graph unreadable; the "
                     "whole module recompiled conservatively\n";
      } else {
        std::cout << "edit-aware: " << mod_run.invalidated_by_edit()
                  << " edited, " << mod_run.invalidated_by_edge()
                  << " invalidated by dependency edges, "
                  << mod_run.cache_hits() << "/" << mod_run.functions.size()
                  << " served warm\n";
      }
      if (opt.explain_invalidation) {
        TextTable explain("invalidation — walked dependency edges");
        explain.set_header({"function", "reason", "via"});
        for (const pipeline::FunctionCompileResult& f : mod_run.functions) {
          explain.add_row({f.name, pipeline::to_string(f.reason),
                           f.invalidated_via.empty() ? "-"
                                                     : f.invalidated_via});
        }
        print_table(explain, opt.csv);
      }
    }
    if (opt.analysis_stats) {
      TextTable table("analysis cache (module)");
      table.set_header({"analysis", "hits", "misses", "puts", "invalidations"});
      for (const auto& s : mod_run.merged_analysis_stats()) {
        table.add_row({s.name, std::to_string(s.hits),
                       std::to_string(s.misses), std::to_string(s.puts),
                       std::to_string(s.invalidations)});
      }
      print_table(table, opt.csv);
    }
    if (opt.cache_stats && cache.has_value()) {
      print_table(cache->stats_table("result cache (" + opt.cache_dir + ")"),
                  opt.csv);
      std::cout << "module cache hits: " << mod_run.cache_hits() << "/"
                << mod_run.functions.size() << " ("
                << TextTable::num(mod_run.cache_hit_rate() * 100.0, 1)
                << "%)\n";
      if (opt.incremental) {
        std::cout << "prefix hits: " << mod_run.prefix_hits() << "/"
                  << mod_run.functions.size() << ", passes skipped: "
                  << mod_run.passes_skipped() << "\n";
      }
    }
    if (!mod_run.ok) {
      std::cerr << "module compilation failed: " << mod_run.error << "\n";
      return 1;
    }
    if (opt.cache_verify && cache.has_value()) {
      // Deterministic sample: the first function restored from the
      // cache is recompiled from scratch and diffed field by field
      // against what the cache returned.
      const pipeline::FunctionCompileResult* hit = nullptr;
      const ir::Function* input = nullptr;
      for (std::size_t i = 0; i < mod_run.functions.size(); ++i) {
        if (mod_run.functions[i].from_cache) {
          hit = &mod_run.functions[i];
          input = &module.functions()[i];
          break;
        }
      }
      if (hit == nullptr) {
        std::cout << "cache-verify: no cached hit in this run (cold cache)\n";
      } else {
        pipeline::PassManager manager(ctx);
        manager.set_checkpoints(opt.verify);
        manager.set_analysis_caching(opt.analysis_cache);
        const auto fresh = manager.run(*input, opt.pipeline);
        std::string mismatch;
        if (!fresh.ok) {
          mismatch = "recompile failed: " + fresh.error;
        } else if (ir::to_string(fresh.state.func) !=
                   ir::to_string(hit->run.state.func)) {
          mismatch = "printed IR differs";
        } else if (ir::fingerprint(fresh.state.func) !=
                   ir::fingerprint(hit->run.state.func)) {
          mismatch = "fingerprint differs";
        } else if (fresh.state.spilled_regs != hit->run.state.spilled_regs) {
          mismatch = "spill count differs";
        } else if (fresh.pass_stats.size() != hit->run.pass_stats.size()) {
          mismatch = "pass count differs";
        } else {
          for (std::size_t p = 0; p < fresh.pass_stats.size(); ++p) {
            const auto& a = fresh.pass_stats[p];
            const auto& b = hit->run.pass_stats[p];
            if (a.name != b.name || a.summary != b.summary ||
                a.changed != b.changed ||
                a.instructions_after != b.instructions_after ||
                a.vregs_after != b.vregs_after) {
              mismatch = "pass '" + a.name + "' statistics differ";
              break;
            }
          }
        }
        if (!mismatch.empty()) {
          std::cerr << "cache-verify FAILED on '" << hit->name
                    << "': " << mismatch << "\n";
          return 1;
        }
        std::cout << "cache-verify: '" << hit->name
                  << "' matches a fresh recompile\n";
      }
    }
    std::cout << "compiled " << module.size() << " functions in "
              << TextTable::num(mod_run.total_seconds * 1e3, 1) << " ms ("
              << TextTable::num(
                     static_cast<double>(module.size()) /
                         (mod_run.total_seconds > 0 ? mod_run.total_seconds
                                                    : 1e-12),
                     1)
              << " functions/sec on " << mod_run.jobs << " threads)\n";
    return 0;
  }

  if (!opt.cache_dir.empty() || opt.cache_stats || opt.cache_verify) {
    std::cerr << "note: the result cache applies to module compiles; a "
                 "single input uses the measurement path (pass several "
                 "inputs or a multi-function .tir)\n";
  }

  pipeline::PassManager manager(ctx);
  manager.set_checkpoints(opt.verify);
  manager.set_analysis_caching(opt.analysis_cache);

  const auto run = manager.run(kernel.func, opt.pipeline);
  if (!run.ok) {
    std::cerr << "pipeline failed: " << run.error << "\n";
    return 1;
  }
  print_table(pipeline::PassManager::stats_table(
                  run, "pipeline '" + opt.pipeline + "' on " + kernel.name),
              opt.csv);
  if (opt.analysis_stats) {
    print_table(run.state.analyses.stats_table("analysis cache"), opt.csv);
  }

  if (!run.state.has_assignment()) {
    std::cout << "(no assignment produced; add an alloc= pass to measure "
                 "thermal effect)\n";
    return 0;
  }

  const Measured after =
      measure(fp, run.state, kernel.default_args, kernel.init_memory);
  if (!after.ok) {
    std::cerr << "pipeline output trapped: " << after.trap << "\n";
    return 1;
  }

  std::optional<Measured> before;
  if (opt.baseline != "none") {
    const auto base_run = manager.run(kernel.func, opt.baseline);
    if (!base_run.ok) {
      std::cerr << "baseline pipeline failed: " << base_run.error << "\n";
      return 1;
    }
    if (base_run.state.has_assignment()) {
      before =
          measure(fp, base_run.state, kernel.default_args, kernel.init_memory);
      if (!before->ok) {
        std::cerr << "baseline output trapped: " << before->trap << "\n";
        return 1;
      }
      if (before->result != after.result) {
        std::cerr << "SEMANTICS BROKEN: baseline returned "
                  << before->result.value_or(0) << ", pipeline returned "
                  << after.result.value_or(0) << "\n";
        return 1;
      }
    }
  }
  if (kernel.expected_result.has_value() &&
      after.result != kernel.expected_result) {
    std::cerr << "SEMANTICS BROKEN: expected " << *kernel.expected_result
              << ", got " << after.result.value_or(0) << "\n";
    return 1;
  }

  auto to_c = [](std::vector<double> v) {
    for (double& t : v) {
      t -= 273.15;
    }
    return v;
  };
  if (opt.maps && before.has_value()) {
    HeatmapOptions hm;
    hm.scale_min = std::min(before->stats.min_k, after.stats.min_k) - 273.15;
    hm.scale_max = std::max(before->stats.peak_k, after.stats.peak_k) - 273.15;
    render_heatmap_pair(std::cout, to_c(before->temps_k), to_c(after.temps_k),
                        fp.rows(), fp.cols(), "baseline", "pipeline", hm);
    std::cout << '\n';
  } else if (opt.maps) {
    render_heatmap(std::cout, to_c(after.temps_k), fp.rows(), fp.cols());
    std::cout << '\n';
  }

  TextTable table("measured steady state — " + kernel.name);
  table.set_header({"pipeline", "peak degC", "range K", "stddev K",
                    "max grad K", "cycles", "result"});
  auto row = [&](const std::string& name, const Measured& m) {
    table.add_row({name, TextTable::num(m.stats.peak_k - 273.15, 2),
                   TextTable::num(m.stats.range_k, 3),
                   TextTable::num(m.stats.stddev_k, 3),
                   TextTable::num(m.stats.max_gradient_k, 3),
                   std::to_string(m.cycles),
                   std::to_string(m.result.value_or(0))});
  };
  if (before.has_value()) {
    row(opt.baseline, *before);
  }
  row(opt.pipeline, after);
  print_table(table, opt.csv);
  return 0;
}

void print_serve_usage(std::ostream& os, const char* argv0) {
  os
      << "usage: " << argv0
      << " serve [--socket=PATH] [--tcp=HOST:PORT] [options]\n"
      << "  --socket=PATH        Unix-domain socket to listen on\n"
      << "  --tcp=HOST:PORT      TCP endpoint to listen on (port 0 binds an\n"
      << "                       ephemeral port, printed once bound); at\n"
      << "                       least one of --socket/--tcp is required,\n"
      << "                       both at once is fine\n"
      << "  --max-queue=N        admission control: requests allowed to wait\n"
      << "                       for the dispatcher (0 = unbounded); a\n"
      << "                       request hitting a full queue is answered\n"
      << "                       BUSY instead of queuing\n"
      << "  --io-timeout=S       per-connection read/write deadline (default\n"
      << "                       30; 0 disables the read deadline); a peer\n"
      << "                       stalling mid-frame gets a structured\n"
      << "                       timeout error\n"
      << "  --metrics-json=PATH  write the metrics snapshot to PATH (atomic\n"
      << "                       rename) every second and on drain\n"
      << "  --jobs=N             worker threads per module compile\n"
      << "                       (default: hardware concurrency)\n"
      << "  --pipeline=SPEC      pipeline for requests that send none\n"
      << "                       (default: the Sec. 4 flow)\n"
      << "  --cache-dir=DIR      shared persistent result cache\n"
      << "  --cache-max-bytes=N  cache size budget (0 = unbounded)\n"
      << "  --incremental        resume compiles from cached pass-boundary\n"
      << "                       snapshots (needs --cache-dir)\n"
      << "  --stage-every=N      also snapshot after every N-th pass\n"
      << "                       (implies --incremental)\n"
      << "  --metrics-every=SEC  print aggregate metrics every SEC seconds\n"
      << "  --delta=K            thermal-DFA convergence threshold\n"
      << "  --max-iters=N        thermal-DFA iteration cap\n"
      << "  --subdivision=N      thermal grid points per cell edge\n"
      << "  --machine=NAME       named machine config the server compiles\n"
      << "                       for by default (default 'default'; requests\n"
      << "                       may name any other registry machine)\n"
      << "  --strict-math        force the bit-identical reference thermal\n"
      << "                       kernel for every request\n"
      << "  --seed=N             assignment-policy seed\n"
      << "  --help               print this help and exit\n"
      << "Stop with SIGINT/SIGTERM; in-flight requests drain first.\n";
}

int serve_usage(const char* argv0) {
  print_serve_usage(std::cerr, argv0);
  return 2;
}

/// `tadfa serve`: the compile pipeline as a persistent service.
int run_serve(const char* argv0, int argc, char** argv) {
  service::ServerConfig cfg;
  cfg.default_spec = kDefaultPipeline;
  double metrics_every = 0;
  std::string metrics_json_path;
  double delta_k = 0.01;
  int max_iterations = 100;
  std::uint64_t seed = 42;
  unsigned subdivision = 1;
  bool strict_math = false;
  std::string machine_name = "default";
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& prefix) -> std::optional<std::string> {
      if (starts_with(arg, prefix)) {
        return arg.substr(prefix.size());
      }
      return std::nullopt;
    };
    long long n = 0;
    if (arg == "--help") {
      print_serve_usage(std::cout, argv0);
      return 0;
    }
    if (auto v = value("--socket=")) {
      cfg.socket_path = *v;
    } else if (auto v = value("--tcp=")) {
      std::string tcp_error;
      auto endpoint = service::parse_host_port(*v, &tcp_error);
      if (!endpoint.has_value()) {
        std::cerr << "bad --tcp value: " << tcp_error << "\n";
        return serve_usage(argv0);
      }
      cfg.tcp_host = endpoint->host;
      cfg.tcp_port = endpoint->port;
    } else if (auto v = value("--max-queue=")) {
      if (!parse_int(*v, n) || n < 0) {
        return serve_usage(argv0);
      }
      cfg.max_queue = static_cast<std::size_t>(n);
    } else if (auto v = value("--io-timeout=")) {
      if (!parse_double(*v, cfg.io_timeout_seconds) ||
          cfg.io_timeout_seconds < 0) {
        return serve_usage(argv0);
      }
    } else if (auto v = value("--metrics-json=")) {
      metrics_json_path = *v;
    } else if (auto v = value("--pipeline=")) {
      cfg.default_spec = *v;
    } else if (auto v = value("--cache-dir=")) {
      cfg.cache_dir = *v;
    } else if (auto v = value("--cache-max-bytes=")) {
      if (!parse_int(*v, n) || n < 0) {
        return serve_usage(argv0);
      }
      cfg.cache_max_bytes = static_cast<std::uint64_t>(n);
    } else if (arg == "--incremental") {
      cfg.stage_policy.enabled = true;
    } else if (auto v = value("--stage-every=")) {
      if (!parse_int(*v, n) || n < 1) {
        return serve_usage(argv0);
      }
      cfg.stage_policy.enabled = true;
      cfg.stage_policy.every_k = static_cast<unsigned>(n);
    } else if (auto v = value("--jobs=")) {
      if (!parse_int(*v, n) || n < 0) {
        return serve_usage(argv0);
      }
      cfg.jobs = static_cast<unsigned>(n);
    } else if (auto v = value("--metrics-every=")) {
      if (!parse_double(*v, metrics_every) || metrics_every < 0) {
        return serve_usage(argv0);
      }
    } else if (auto v = value("--delta=")) {
      if (!parse_double(*v, delta_k)) {
        return serve_usage(argv0);
      }
    } else if (auto v = value("--max-iters=")) {
      if (!parse_int(*v, n) || n < 1) {
        return serve_usage(argv0);
      }
      max_iterations = static_cast<int>(n);
    } else if (auto v = value("--subdivision=")) {
      if (!parse_int(*v, n) || n < 1) {
        return serve_usage(argv0);
      }
      subdivision = static_cast<unsigned>(n);
    } else if (auto v = value("--machine=")) {
      machine_name = *v;
    } else if (arg == "--strict-math") {
      strict_math = true;
    } else if (auto v = value("--seed=")) {
      if (!parse_int(*v, n) || n < 0) {
        return serve_usage(argv0);
      }
      seed = static_cast<std::uint64_t>(n);
    } else {
      return serve_usage(argv0);
    }
  }
  if (cfg.socket_path.empty() && cfg.tcp_host.empty()) {
    return serve_usage(argv0);
  }
  if (cfg.stage_policy.enabled && cfg.cache_dir.empty()) {
    std::cerr << "--incremental needs --cache-dir=DIR\n";
    return 2;
  }

  const machine::MachineConfig* mc = machine::find_machine(machine_name);
  if (mc == nullptr) {
    std::cerr << "tadfa serve: unknown machine '" << machine_name
              << "' (tadfa --list-machines shows them)\n";
    return 2;
  }
  pipeline::RigOptions rig_options;
  rig_options.subdivision = subdivision;
  rig_options.dfa_config.delta_k = delta_k;
  rig_options.dfa_config.max_iterations = max_iterations;
  rig_options.dfa_config.strict_math = strict_math;
  rig_options.policy_seed = seed;
  const pipeline::CompileRig rig(*mc, rig_options);
  pipeline::PipelineContext ctx = rig.context();

  // Block the shutdown signals before any thread exists so every server
  // thread inherits the mask; only this thread's sigtimedwait consumes
  // them, which is what makes the drain graceful.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  service::CompileServer server(ctx, cfg);
  if (!server.start()) {
    std::cerr << "tadfa serve: " << server.error() << "\n";
    return 1;
  }
  std::string listening;
  if (!cfg.socket_path.empty()) {
    listening = cfg.socket_path;
  }
  if (!cfg.tcp_host.empty()) {
    if (!listening.empty()) {
      listening += " and ";
    }
    listening +=
        "tcp:" + cfg.tcp_host + ":" + std::to_string(server.tcp_port());
  }
  std::cout << "tadfa serve: listening on " << listening << " (jobs="
            << (cfg.jobs == 0 ? std::string("auto")
                              : std::to_string(cfg.jobs))
            << (cfg.cache_dir.empty() ? std::string(", uncached")
                                      : ", cache=" + cfg.cache_dir)
            << (cfg.max_queue > 0
                    ? ", max-queue=" + std::to_string(cfg.max_queue)
                    : std::string())
            << ")\n"
            << std::flush;

  using Clock = std::chrono::steady_clock;
  auto last_metrics = Clock::now();
  std::string json_error;
  for (;;) {
    timespec tick{};
    tick.tv_sec = 1;
    const int sig = sigtimedwait(&signals, nullptr, &tick);
    if (sig == SIGINT || sig == SIGTERM) {
      std::cout << "tadfa serve: caught "
                << (sig == SIGINT ? "SIGINT" : "SIGTERM")
                << ", draining\n";
      break;
    }
    if (!metrics_json_path.empty() &&
        !server.write_metrics_json(metrics_json_path, &json_error)) {
      std::cerr << "tadfa serve: " << json_error << "\n";
    }
    if (metrics_every > 0 &&
        std::chrono::duration<double>(Clock::now() - last_metrics).count() >=
            metrics_every) {
      server.metrics_table().print(std::cout);
      std::cout << std::flush;
      last_metrics = Clock::now();
    }
  }
  server.shutdown();
  if (!metrics_json_path.empty() &&
      !server.write_metrics_json(metrics_json_path, &json_error)) {
    std::cerr << "tadfa serve: " << json_error << "\n";
  }
  server.metrics_table("compile server — final").print(std::cout);
  return 0;
}

void print_route_usage(std::ostream& os, const char* argv0) {
  os
      << "usage: " << argv0
      << " route [--socket=PATH] [--tcp=HOST:PORT] --shard=ADDR... \n"
      << "  --socket=PATH        Unix-domain socket to listen on\n"
      << "  --tcp=HOST:PORT      TCP endpoint to listen on (port 0 binds an\n"
      << "                       ephemeral port); at least one of\n"
      << "                       --socket/--tcp is required\n"
      << "  --shard=ADDR         backend compile server, repeated once per\n"
      << "                       shard: unix:PATH or tcp:HOST:PORT\n"
      << "  --io-timeout=S       client-connection read/write deadline\n"
      << "                       (default 30; 0 disables the read deadline)\n"
      << "  --connect-timeout=S  budget for dialing a shard before routing\n"
      << "                       around it (default 5)\n"
      << "  --max-waiters=N      shed BUSY once N requests are already\n"
      << "                       waiting on one shard's connection\n"
      << "                       (default 8; 0 = unbounded)\n"
      << "  --metrics-every=SEC  print aggregate metrics every SEC seconds\n"
      << "  --metrics-json=PATH  write the metrics snapshot (with a\n"
      << "                       per-shard breakdown) to PATH every second\n"
      << "                       and on drain\n"
      << "  --help               print this help and exit\n"
      << "Functions are routed to shards by input fingerprint, so each\n"
      << "shard's cache warms a disjoint slice of the workload. Stop with\n"
      << "SIGINT/SIGTERM; in-flight requests drain first.\n";
}

int route_usage(const char* argv0) {
  print_route_usage(std::cerr, argv0);
  return 2;
}

/// `tadfa route`: a sharding front-end over running compile servers.
int run_route(const char* argv0, int argc, char** argv) {
  service::RouterConfig cfg;
  double metrics_every = 0;
  std::string metrics_json_path;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& prefix) -> std::optional<std::string> {
      if (starts_with(arg, prefix)) {
        return arg.substr(prefix.size());
      }
      return std::nullopt;
    };
    if (arg == "--help") {
      print_route_usage(std::cout, argv0);
      return 0;
    }
    if (auto v = value("--socket=")) {
      cfg.socket_path = *v;
    } else if (auto v = value("--tcp=")) {
      std::string tcp_error;
      auto endpoint = service::parse_host_port(*v, &tcp_error);
      if (!endpoint.has_value()) {
        std::cerr << "bad --tcp value: " << tcp_error << "\n";
        return route_usage(argv0);
      }
      cfg.tcp_host = endpoint->host;
      cfg.tcp_port = endpoint->port;
    } else if (auto v = value("--shard=")) {
      std::string shard_error;
      auto address = service::parse_shard_address(*v, &shard_error);
      if (!address.has_value()) {
        std::cerr << "bad --shard value: " << shard_error << "\n";
        return route_usage(argv0);
      }
      cfg.shards.push_back(std::move(*address));
    } else if (auto v = value("--io-timeout=")) {
      if (!parse_double(*v, cfg.io_timeout_seconds) ||
          cfg.io_timeout_seconds < 0) {
        return route_usage(argv0);
      }
    } else if (auto v = value("--connect-timeout=")) {
      if (!parse_double(*v, cfg.connect_timeout_seconds) ||
          cfg.connect_timeout_seconds < 0) {
        return route_usage(argv0);
      }
    } else if (auto v = value("--max-waiters=")) {
      long long n = 0;
      if (!parse_int(*v, n) || n < 0) {
        return route_usage(argv0);
      }
      cfg.max_shard_waiters = static_cast<std::size_t>(n);
    } else if (auto v = value("--metrics-every=")) {
      if (!parse_double(*v, metrics_every) || metrics_every < 0) {
        return route_usage(argv0);
      }
    } else if (auto v = value("--metrics-json=")) {
      metrics_json_path = *v;
    } else {
      return route_usage(argv0);
    }
  }
  if ((cfg.socket_path.empty() && cfg.tcp_host.empty()) ||
      cfg.shards.empty()) {
    return route_usage(argv0);
  }

  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  service::Router router(cfg);
  if (!router.start()) {
    std::cerr << "tadfa route: " << router.error() << "\n";
    return 1;
  }
  std::string listening;
  if (!cfg.socket_path.empty()) {
    listening = cfg.socket_path;
  }
  if (!cfg.tcp_host.empty()) {
    if (!listening.empty()) {
      listening += " and ";
    }
    listening +=
        "tcp:" + cfg.tcp_host + ":" + std::to_string(router.tcp_port());
  }
  std::cout << "tadfa route: listening on " << listening << ", "
            << cfg.shards.size() << " shard"
            << (cfg.shards.size() == 1 ? "" : "s") << ":";
  for (const service::ShardAddress& shard : cfg.shards) {
    std::cout << ' ' << shard.describe();
  }
  std::cout << "\n" << std::flush;

  using Clock = std::chrono::steady_clock;
  auto last_metrics = Clock::now();
  std::string json_error;
  for (;;) {
    timespec tick{};
    tick.tv_sec = 1;
    const int sig = sigtimedwait(&signals, nullptr, &tick);
    if (sig == SIGINT || sig == SIGTERM) {
      std::cout << "tadfa route: caught "
                << (sig == SIGINT ? "SIGINT" : "SIGTERM")
                << ", draining\n";
      break;
    }
    if (!metrics_json_path.empty() &&
        !router.write_metrics_json(metrics_json_path, &json_error)) {
      std::cerr << "tadfa route: " << json_error << "\n";
    }
    if (metrics_every > 0 &&
        std::chrono::duration<double>(Clock::now() - last_metrics).count() >=
            metrics_every) {
      router.metrics_table().print(std::cout);
      std::cout << std::flush;
      last_metrics = Clock::now();
    }
  }
  router.shutdown();
  if (!metrics_json_path.empty() &&
      !router.write_metrics_json(metrics_json_path, &json_error)) {
    std::cerr << "tadfa route: " << json_error << "\n";
  }
  router.metrics_table("compile router — final").print(std::cout);
  return 0;
}

void print_client_usage(std::ostream& os, const char* argv0) {
  os
      << "usage: " << argv0
      << " client (--socket=PATH | --tcp=HOST:PORT) [options] "
         "<kernel-name | file.tir>...\n"
      << "  --socket=PATH        server Unix-domain socket\n"
      << "  --tcp=HOST:PORT      server (or router) TCP endpoint; exactly\n"
      << "                       one of --socket/--tcp is required\n"
      << "  --busy-timeout=S     keep retrying a BUSY response with bounded\n"
      << "                       exponential backoff for S seconds (default\n"
      << "                       10; 0 = fail on the first BUSY)\n"
      << "  --pipeline=SPEC      pipeline spec (default: server's default)\n"
      << "  --frontend=NAME      language the request's module text is in\n"
      << "                       (default: auto-detect — texpr when every\n"
      << "                       file input ends in .texpr, else the\n"
      << "                       server's default, tir)\n"
      << "  --machine=NAME       named machine config to compile for\n"
      << "                       (default: the server's base machine)\n"
      << "  --no-verify          disable verifier checkpoints\n"
      << "  --no-analysis-cache  disable the analysis cache\n"
      << "  --min-hit-rate=P     exit 1 unless the response's cache hit\n"
      << "                       rate is at least P (0..1); CI warm gate\n"
      << "  --connect-timeout=S  keep retrying the connect with backoff for\n"
      << "                       S seconds (default 5; 0 = one attempt), so\n"
      << "                       a client raced against server startup wins\n"
      << "  --print-ir           dump each compiled function's IR\n"
      << "  --edit-aware         ask the server for dependency-edge\n"
      << "                       invalidation (per-function reasons in the\n"
      << "                       result table; needs a server-side cache)\n"
      << "  --explain-invalidation  print each function's invalidation\n"
      << "                       reason and the dependency path walked\n"
      << "                       (implies --edit-aware)\n"
      << "  --csv                emit tables as CSV\n"
      << "  --quiet              only errors and the summary line\n"
      << "  --help               print this help and exit\n";
}

int client_usage(const char* argv0) {
  print_client_usage(std::cerr, argv0);
  return 2;
}

/// `tadfa client`: submit kernels/files to a running server.
int run_client(const char* argv0, int argc, char** argv) {
  std::string socket_path;
  std::optional<service::TcpEndpoint> tcp;
  service::CompileRequest request;
  double min_hit_rate = -1;
  double connect_timeout = 5.0;
  double busy_timeout = 10.0;
  bool print_ir = false;
  bool explain_invalidation = false;
  bool csv = false;
  bool quiet = false;
  std::vector<std::string> inputs;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& prefix) -> std::optional<std::string> {
      if (starts_with(arg, prefix)) {
        return arg.substr(prefix.size());
      }
      return std::nullopt;
    };
    if (arg == "--help") {
      print_client_usage(std::cout, argv0);
      return 0;
    }
    if (auto v = value("--socket=")) {
      socket_path = *v;
    } else if (auto v = value("--tcp=")) {
      std::string tcp_error;
      tcp = service::parse_host_port(*v, &tcp_error);
      if (!tcp.has_value()) {
        std::cerr << "bad --tcp value: " << tcp_error << "\n";
        return client_usage(argv0);
      }
    } else if (auto v = value("--busy-timeout=")) {
      if (!parse_double(*v, busy_timeout) || busy_timeout < 0) {
        return client_usage(argv0);
      }
    } else if (auto v = value("--pipeline=")) {
      request.spec = *v;
    } else if (auto v = value("--frontend=")) {
      request.frontend = *v;
    } else if (auto v = value("--machine=")) {
      request.machine = *v;
    } else if (arg == "--no-verify") {
      request.checkpoints = false;
    } else if (arg == "--no-analysis-cache") {
      request.analysis_cache = false;
    } else if (auto v = value("--min-hit-rate=")) {
      if (!parse_double(*v, min_hit_rate) || min_hit_rate < 0 ||
          min_hit_rate > 1) {
        return client_usage(argv0);
      }
    } else if (auto v = value("--connect-timeout=")) {
      if (!parse_double(*v, connect_timeout) || connect_timeout < 0) {
        return client_usage(argv0);
      }
    } else if (arg == "--print-ir") {
      print_ir = true;
    } else if (arg == "--edit-aware") {
      request.edit_aware = true;
    } else if (arg == "--explain-invalidation") {
      request.edit_aware = true;
      explain_invalidation = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return client_usage(argv0);
    } else {
      inputs.push_back(arg);
    }
  }
  if (socket_path.empty() == !tcp.has_value() || inputs.empty()) {
    return client_usage(argv0);
  }

  // Named kernels travel by name (the server owns the suite); files
  // travel as source text in the request's frontend language. All of a
  // request's module text is one source, so its files must agree on a
  // language: without --frontend, texpr is inferred only when every file
  // input ends in .texpr.
  std::size_t file_inputs = 0;
  std::size_t texpr_inputs = 0;
  for (const std::string& input : inputs) {
    if (workload::make_kernel(input).has_value()) {
      request.kernels.push_back(input);
      continue;
    }
    std::ifstream in(input);
    if (!in) {
      std::cerr << "'" << input
                << "' is neither a known kernel nor a readable file\n";
      return 1;
    }
    ++file_inputs;
    if (ends_with(input, ".texpr")) {
      ++texpr_inputs;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    request.module_text += buffer.str();
    request.module_text += '\n';
  }
  if (request.frontend.empty() && file_inputs > 0) {
    if (texpr_inputs == file_inputs) {
      request.frontend = "texpr";
    } else if (texpr_inputs > 0) {
      std::cerr << "tadfa client: inputs mix .texpr and other files; pass "
                   "--frontend=NAME to pick one language\n";
      return 2;
    }
  }

  std::string error;
  auto dial = [&]() -> int {
    if (tcp.has_value()) {
      return connect_timeout > 0
                 ? service::connect_tcp_retry(tcp->host, tcp->port,
                                              connect_timeout, &error)
                 : service::connect_tcp(tcp->host, tcp->port, &error);
    }
    return connect_timeout > 0
               ? service::connect_unix_retry(socket_path, connect_timeout,
                                             &error)
               : service::connect_unix(socket_path, &error);
  };
  int fd = dial();
  if (fd < 0) {
    std::cerr << "tadfa client: " << error << "\n";
    return 1;
  }

  // BUSY means the server shed the request at admission; it is a purely
  // transient state, so retry with bounded exponential backoff until
  // the budget runs out (the last BUSY response is then reported).
  using Clock = std::chrono::steady_clock;
  const auto busy_deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(busy_timeout));
  double backoff_ms = 10;
  std::optional<service::CompileResponse> response;
  for (;;) {
    response.reset();
    if (service::write_request(fd, request, &error)) {
      response = service::read_response(fd, &error);
    }
    if (!response.has_value() || response->ok ||
        response->code != service::ResponseCode::kBusy ||
        Clock::now() >= busy_deadline) {
      break;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, 500.0);
  }
  if (fd >= 0) {
    ::close(fd);
  }
  if (!response.has_value()) {
    std::cerr << "tadfa client: " << error << "\n";
    return 1;
  }
  if (!response->error.empty()) {
    std::cerr << "tadfa client: server "
              << (response->code == service::ResponseCode::kBusy ? "busy"
                                                                 : "error")
              << ": " << response->error << "\n";
  }

  if (!quiet) {
    TextTable table("server compile — " +
                    std::to_string(response->functions.size()) +
                    " functions");
    std::vector<std::string> header = {"#",      "function", "ok",
                                       "cached", "ms",       "instrs",
                                       "vregs",  "spills"};
    if (request.edit_aware) {
      header.push_back("reason");
    }
    table.set_header(header);
    for (std::size_t i = 0; i < response->functions.size(); ++i) {
      const service::FunctionResult& f = response->functions[i];
      std::vector<std::string> row = {
          std::to_string(i + 1), f.name, f.ok ? "yes" : "NO",
          f.from_cache ? "yes" : "no", TextTable::num(f.seconds * 1e3, 3),
          std::to_string(f.instructions), std::to_string(f.vregs),
          std::to_string(f.spilled_regs)};
      if (request.edit_aware) {
        row.push_back(pipeline::to_string(f.invalidation));
      }
      table.add_row(row);
    }
    print_table(table, csv);
    if (explain_invalidation) {
      TextTable explain("invalidation — walked dependency edges");
      explain.set_header({"function", "reason", "via"});
      for (const service::FunctionResult& f : response->functions) {
        explain.add_row({f.name, pipeline::to_string(f.invalidation),
                         f.invalidated_via.empty() ? "-"
                                                   : f.invalidated_via});
      }
      print_table(explain, csv);
    }
    if (!response->pass_stats.empty()) {
      TextTable stats("pipeline (merged over request)");
      stats.set_header({"#", "pass", "ms", "instrs", "vregs", "summary"});
      for (std::size_t i = 0; i < response->pass_stats.size(); ++i) {
        const pipeline::PassRunStats& s = response->pass_stats[i];
        stats.add_row({std::to_string(i + 1), s.name,
                       TextTable::num(s.seconds * 1e3, 3),
                       std::to_string(s.instructions_after),
                       std::to_string(s.vregs_after), s.summary});
      }
      print_table(stats, csv);
    }
  }
  if (print_ir) {
    for (const service::FunctionResult& f : response->functions) {
      std::cout << f.printed << "\n";
    }
  }
  std::cout << "compiled " << response->functions.size()
            << " functions via server in "
            << TextTable::num(response->server_seconds * 1e3, 1)
            << " ms, cache hits " << response->cache_hits() << "/"
            << response->functions.size() << " ("
            << TextTable::num(response->cache_hit_rate() * 100.0, 1)
            << "%)\n";
  if (response->passes_skipped() > 0) {
    std::cout << "prefix hits " << response->prefix_hits() << "/"
              << response->functions.size() << ", passes skipped "
              << response->passes_skipped() << "\n";
  }
  if (!response->ok) {
    return 1;
  }
  if (min_hit_rate >= 0 && response->cache_hit_rate() < min_hit_rate) {
    std::cerr << "tadfa client: cache hit rate "
              << TextTable::num(response->cache_hit_rate() * 100.0, 1)
              << "% is below the required "
              << TextTable::num(min_hit_rate * 100.0, 1) << "%\n";
    return 1;
  }
  return 0;
}

/// Dispatches subcommands; exceptions are caught by main().
int tadfa_main(int argc, char** argv) {
  if (argc >= 2) {
    const std::string subcommand = argv[1];
    // Deliberate failure path exercised by the CLI subprocess test: an
    // exception thrown from anywhere under tadfa_main must surface as
    // "tadfa: error: ..." with exit 1, never as std::terminate.
    if (subcommand == "--self-test-throw") {
      throw std::runtime_error("self-test exception");
    }
    if (subcommand == "serve") {
      return run_serve(argv[0], argc - 2, argv + 2);
    }
    if (subcommand == "route") {
      return run_route(argv[0], argc - 2, argv + 2);
    }
    if (subcommand == "client") {
      return run_client(argv[0], argc - 2, argv + 2);
    }
  }
  return run_compile(argc, argv);
}

}  // namespace

int main(int argc, char** argv) {
  // Last-resort handler: any exception that escapes the command paths
  // (a std::filesystem_error from a cache directory, a bad_alloc, a
  // parser bug) becomes a diagnostic and exit 1 — without this, the
  // process dies in std::terminate with no message at all.
  try {
    return tadfa_main(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "tadfa: error: " << e.what() << "\n";
    return 1;
  } catch (...) {
    std::cerr << "tadfa: error: unknown non-standard exception\n";
    return 1;
  }
}
