#!/usr/bin/env python3
"""Append benchmark artifacts to the repo's bench history.

Each BENCH_*.json the benches emit (see bench/*.cpp) is one headline
record: {"bench": ..., "config": {...}, <metrics...>, "git_sha": ...}.
This tool appends those records to a JSON-Lines history file keyed by
git sha and compares each new record against the most recent entry for
the same (bench, config) pair, printing a warning when a headline
metric regressed. The config is part of the key because the benches now
run across the machine matrix: a throughput record measured on
machine "dense45" must never be judged against a "default" baseline —
those are different hardware models, not a regression. The config is
canonicalized (sorted keys) before keying, so key order in the artifact
doesn't split history.

The comparison is warn-only by default: CI runners are shared hardware,
so absolute numbers jitter run to run and across runner generations. A
warning in the log is a prompt to look, not a gate — the hard gates
(determinism, hit-rate and speedup floors) live inside the benches
themselves, which exit non-zero when violated.

--fail-on-drop=X turns the comparison into a regression gate: a drop
beyond fraction X (e.g. 0.2 = 20%) in a gated metric exits 1 *after*
appending every record, so the failing run is still on the record for
the next comparison. By default every headline metric is gated;
--fail-metrics=a,b restricts the gate to the named metrics (other
metrics still warn at --tolerance). CI uses this for the metrics that
track real throughput (functions_per_sec, cache_hit_rate) while leaving
noisier ones warn-only.

Every top-level numeric field outside "config" is treated as a
higher-is-better metric (true of everything the benches emit today:
functions_per_sec, cache_hit_rate, extension_speedup, prefix_skip_rate,
step_speedup, warm_start_sweep_reduction); a drop beyond --tolerance
(default 20%) warns.

Usage:
    bench_history.py --history bench/history/history.jsonl \
        --git-sha "$GITHUB_SHA" BENCH_throughput.json BENCH_incremental.json

Exits 0 unless an artifact is unreadable or a --fail-on-drop gate
tripped; stdlib only.
"""

import argparse
import json
import sys


def load_history(path):
    """Returns the history as a list of records; [] when absent."""
    records = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as err:
                    print(
                        f"warning: {path}:{line_number}: unparseable history "
                        f"row skipped ({err})",
                        file=sys.stderr,
                    )
    except FileNotFoundError:
        pass
    return records


def config_key(record):
    """Canonical text of the record's config: the comparison key half.

    json.dumps with sorted keys, so {"a": 1, "b": 2} and {"b": 2, "a": 1}
    share one history lane; a missing config is its own lane (None).
    """
    return json.dumps(record.get("config"), sort_keys=True)


def history_key(record):
    """(bench, canonical config): one comparison lane per pair."""
    return (record.get("bench", "?"), config_key(record))


def headline_metrics(record):
    """Top-level numeric fields (bools excluded) outside config/git_sha."""
    return {
        key: value
        for key, value in record.items()
        if key not in ("config", "git_sha", "bench")
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
    }


def compare(previous, current, tolerance, fail_on_drop=None, fail_metrics=None):
    """Compares `current` against `previous` metric by metric.

    Returns the list of (metric, drop) pairs that tripped the
    --fail-on-drop gate (empty when gating is off or nothing tripped);
    warn-only regressions are printed as before.
    """
    failures = []
    prev_metrics = headline_metrics(previous)
    for key, value in headline_metrics(current).items():
        if key not in prev_metrics:
            continue
        baseline = prev_metrics[key]
        if baseline <= 0:
            continue
        drop = (baseline - value) / baseline
        gated = fail_on_drop is not None and (
            fail_metrics is None or key in fail_metrics
        )
        if gated and drop > fail_on_drop:
            print(
                f"FAIL: {current.get('bench', '?')}: {key} dropped "
                f"{drop * 100.0:.1f}% vs {previous.get('git_sha', '?')[:12]} "
                f"({baseline:g} -> {value:g}), gate is "
                f"{fail_on_drop * 100.0:.0f}%",
                file=sys.stderr,
            )
            failures.append((key, drop))
        elif drop > tolerance:
            print(
                f"warning: {current.get('bench', '?')}: {key} dropped "
                f"{drop * 100.0:.1f}% vs {previous.get('git_sha', '?')[:12]} "
                f"({baseline:g} -> {value:g})",
                file=sys.stderr,
            )
    return failures


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifacts", nargs="+", help="BENCH_*.json files")
    parser.add_argument("--history", required=True, help="history.jsonl path")
    parser.add_argument("--git-sha", default="", help="overrides each record's sha")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="relative drop that triggers a warning (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--fail-on-drop",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 when a gated metric drops more than fraction X "
        "vs the previous record (records are still appended first)",
    )
    parser.add_argument(
        "--fail-metrics",
        default=None,
        metavar="A,B",
        help="comma-separated metrics the --fail-on-drop gate applies to "
        "(default: every headline metric)",
    )
    args = parser.parse_args(argv)

    fail_metrics = None
    if args.fail_metrics is not None:
        fail_metrics = {m.strip() for m in args.fail_metrics.split(",") if m.strip()}
        if not fail_metrics:
            print("error: --fail-metrics names no metrics", file=sys.stderr)
            return 2

    history = load_history(args.history)
    last_by_key = {}
    for record in history:
        if "bench" in record:
            last_by_key[history_key(record)] = record

    appended = []
    failures = []
    for path in args.artifacts:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError) as err:
            print(f"error: cannot read {path}: {err}", file=sys.stderr)
            return 1
        if args.git_sha:
            record["git_sha"] = args.git_sha
        name = record.get("bench", "?")
        previous = last_by_key.get(history_key(record))
        if previous is not None:
            failures.extend(
                compare(
                    previous,
                    record,
                    args.tolerance,
                    fail_on_drop=args.fail_on_drop,
                    fail_metrics=fail_metrics,
                )
            )
        else:
            print(
                f"note: {name}: no prior history entry for this config; "
                "baseline recorded"
            )
        appended.append(record)
        last_by_key[history_key(record)] = record

    with open(args.history, "a", encoding="utf-8") as handle:
        for record in appended:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"appended {len(appended)} record(s) to {args.history}")
    if failures:
        print(
            f"{len(failures)} gated metric(s) regressed beyond the "
            "--fail-on-drop threshold",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
