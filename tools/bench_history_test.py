#!/usr/bin/env python3
"""Unit tests for bench_history.py's (bench, config) keying and gating.

Run directly (CI does): python3 tools/bench_history_test.py
Stdlib only, no test framework assumptions beyond unittest.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_history


def record(bench, config, sha="cafe", **metrics):
    row = {"bench": bench, "config": config, "git_sha": sha}
    row.update(metrics)
    return row


class HistoryKeyTest(unittest.TestCase):
    def test_key_is_bench_plus_canonical_config(self):
        a = record("throughput", {"machine": "default", "jobs": 8})
        b = record("throughput", {"jobs": 8, "machine": "default"})
        self.assertEqual(
            bench_history.history_key(a), bench_history.history_key(b)
        )

    def test_distinct_configs_are_distinct_lanes(self):
        a = record("throughput", {"machine": "default"})
        b = record("throughput", {"machine": "dense45"})
        self.assertNotEqual(
            bench_history.history_key(a), bench_history.history_key(b)
        )

    def test_missing_config_is_its_own_lane(self):
        a = record("throughput", None)
        del a["config"]
        b = record("throughput", {"machine": "default"})
        self.assertNotEqual(
            bench_history.history_key(a), bench_history.history_key(b)
        )

    def test_nested_config_order_does_not_matter(self):
        a = record("x", {"rig": {"banks": 4, "regs": 64}})
        b = record("x", {"rig": {"regs": 64, "banks": 4}})
        self.assertEqual(
            bench_history.history_key(a), bench_history.history_key(b)
        )


class MainFlowTest(unittest.TestCase):
    """End-to-end through main(): history on disk, artifacts as files."""

    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.history = os.path.join(self.dir.name, "history.jsonl")

    def tearDown(self):
        self.dir.cleanup()

    def write_artifact(self, name, row):
        path = os.path.join(self.dir.name, name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(row, handle)
        return path

    def run_main(self, artifacts, *extra):
        return bench_history.main(
            list(artifacts) + ["--history", self.history] + list(extra)
        )

    def history_rows(self):
        with open(self.history, "r", encoding="utf-8") as handle:
            return [json.loads(line) for line in handle if line.strip()]

    def test_same_config_regression_trips_the_gate(self):
        base = self.write_artifact(
            "a.json",
            record("throughput", {"machine": "default"}, functions_per_sec=100.0),
        )
        self.assertEqual(self.run_main([base]), 0)
        slow = self.write_artifact(
            "b.json",
            record("throughput", {"machine": "default"}, functions_per_sec=10.0),
        )
        self.assertEqual(self.run_main([slow], "--fail-on-drop", "0.5"), 1)
        # The failing run is still appended — next time it is the baseline.
        self.assertEqual(len(self.history_rows()), 2)

    def test_other_machines_history_is_not_a_baseline(self):
        base = self.write_artifact(
            "a.json",
            record("throughput", {"machine": "default"}, functions_per_sec=100.0),
        )
        self.assertEqual(self.run_main([base]), 0)
        # Far slower, but on another machine config: a fresh lane, no gate.
        dense = self.write_artifact(
            "b.json",
            record("throughput", {"machine": "dense45"}, functions_per_sec=5.0),
        )
        self.assertEqual(self.run_main([dense], "--fail-on-drop", "0.5"), 0)
        # Back on default with matching numbers: compared, and clean.
        again = self.write_artifact(
            "c.json",
            record("throughput", {"machine": "default"}, functions_per_sec=99.0),
        )
        self.assertEqual(self.run_main([again], "--fail-on-drop", "0.5"), 0)
        self.assertEqual(len(self.history_rows()), 3)

    def test_artifacts_in_one_run_chain_within_their_lane(self):
        first = self.write_artifact(
            "a.json", record("x", {"machine": "small"}, rate=100.0)
        )
        second = self.write_artifact(
            "b.json", record("x", {"machine": "small"}, rate=10.0)
        )
        self.assertEqual(
            self.run_main([first, second], "--fail-on-drop", "0.5"), 1
        )

    def test_fail_metrics_restricts_the_gate(self):
        base = self.write_artifact(
            "a.json",
            record("x", {"machine": "default"}, rate=100.0, noise=100.0),
        )
        self.assertEqual(self.run_main([base]), 0)
        drop = self.write_artifact(
            "b.json",
            record("x", {"machine": "default"}, rate=100.0, noise=1.0),
        )
        self.assertEqual(
            self.run_main(
                [drop], "--fail-on-drop", "0.5", "--fail-metrics", "rate"
            ),
            0,
        )


if __name__ == "__main__":
    unittest.main()
